// Fault-tolerant rerouting (§1: "the distributed nature of NoC
// infrastructures can be effectively leveraged to enhance system-level
// reliability... reconfigurable NoCs can support component redundancy in a
// transparent fashion").
//
// Source-routing NoCs reconfigure by rewriting the NI look-up tables: given
// a set of failed links, we recompute up*/down* routes that avoid them. The
// up*/down* discipline keeps the surviving routing function deadlock-free
// on one VC; pairs whose endpoints are physically disconnected are
// reported rather than silently dropped.
#pragma once

#include "topology/graph.h"
#include "topology/route.h"

#include <set>
#include <vector>

namespace noc {

struct Reroute_result {
    Route_set routes;
    /// Core pairs with no surviving up*/down* path.
    std::vector<std::pair<Core_id, Core_id>> unreachable;
    [[nodiscard]] bool fully_connected() const
    {
        return unreachable.empty();
    }
};

/// Recompute all-pairs up*/down* routes on `t` while treating every link in
/// `failed` as unusable. `switch_rank` is the same rank order used for the
/// healthy routing function (see topology/routing.h).
[[nodiscard]] Reroute_result
reroute_around_failures(const Topology& t,
                        const std::vector<int>& switch_rank,
                        const std::set<Link_id>& failed);

/// The failure set closed under link reversal: for every failed link the
/// opposite direction of the same switch pair (when the topology has one)
/// is added. A duplex link with one dead direction is retired whole — the
/// standard practice, and what makes up*/down* reachability arguments
/// (which assume bidirectional channels) hold on the surviving graph.
[[nodiscard]] std::set<Link_id>
symmetrize_failures(const Topology& t, const std::set<Link_id>& failed);

/// BFS ranks computed on the SURVIVING graph (links not in `failed`), the
/// correct rank input for reroute_around_failures: ranks from the healthy
/// topology (spanning_tree_ranks) can leave surviving-connected pairs
/// unroutable when a failure cuts a tree edge, because the stale up/down
/// orientation forbids the detour. Ranks from the surviving graph make the
/// up*/down* BFS reach exactly the pairs BFS-reachability reaches: every
/// surviving path decomposes into up-to-root then down-to-destination
/// along the BFS tree. That guarantee needs `failed` to be symmetric
/// (symmetrize_failures) — an up move from a child uses the child->parent
/// direction, the down move the opposite — and the same symmetrized set
/// passed to reroute_around_failures. `preferred_root` gets rank 0 in its
/// component; every other component is rooted at its lowest-id switch
/// (also rank 0). Deeper = more negative. Never throws on disconnection —
/// disconnected pairs surface as Reroute_result::unreachable.
[[nodiscard]] std::vector<int>
failure_aware_ranks(const Topology& t, Switch_id preferred_root,
                    const std::set<Link_id>& failed);

/// Convenience: the links that, respecting the up*/down* discipline, are
/// still usable in at least one route of `routes` (diagnostic for
/// redundancy analysis).
[[nodiscard]] std::set<Link_id> links_used(const Topology& t,
                                           const Route_set& routes);

} // namespace noc
