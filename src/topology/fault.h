// Fault-tolerant rerouting (§1: "the distributed nature of NoC
// infrastructures can be effectively leveraged to enhance system-level
// reliability... reconfigurable NoCs can support component redundancy in a
// transparent fashion").
//
// Source-routing NoCs reconfigure by rewriting the NI look-up tables: given
// a set of failed links, we recompute up*/down* routes that avoid them. The
// up*/down* discipline keeps the surviving routing function deadlock-free
// on one VC; pairs whose endpoints are physically disconnected are
// reported rather than silently dropped.
#pragma once

#include "topology/graph.h"
#include "topology/route.h"

#include <set>
#include <vector>

namespace noc {

struct Reroute_result {
    Route_set routes;
    /// Core pairs with no surviving up*/down* path.
    std::vector<std::pair<Core_id, Core_id>> unreachable;
    [[nodiscard]] bool fully_connected() const
    {
        return unreachable.empty();
    }
};

/// Recompute all-pairs up*/down* routes on `t` while treating every link in
/// `failed` as unusable. `switch_rank` is the same rank order used for the
/// healthy routing function (see topology/routing.h).
[[nodiscard]] Reroute_result
reroute_around_failures(const Topology& t,
                        const std::vector<int>& switch_rank,
                        const std::set<Link_id>& failed);

/// Convenience: the links that, respecting the up*/down* discipline, are
/// still usable in at least one route of `routes` (diagnostic for
/// redundancy analysis).
[[nodiscard]] std::set<Link_id> links_used(const Topology& t,
                                           const Route_set& routes);

} // namespace noc
