// Hierarchical star generator — the memory-centric BONE topology of Fig. 5:
// cluster switches host processing cores; one or more root crossbar switches
// connect the clusters and optionally host shared memories at the root.
#pragma once

#include "topology/graph.h"

#include <vector>

namespace noc {

struct Star_params {
    int clusters = 4;
    int cores_per_cluster = 2;
    /// Cores (e.g. dual-port SRAMs in BONE) attached directly to the root.
    int cores_at_root = 0;
    /// Parallel root crossbars; >1 models the replicated crossbar layers of
    /// the BONE chip. Each cluster connects to every root.
    int root_count = 1;
    double tile_mm = 1.0;
};

struct Star {
    Topology topology;
    /// Rank for up*/down* routing: roots rank 1, clusters rank 0.
    std::vector<int> switch_rank;
    /// Core ids attached at the root(s) (the shared memories).
    std::vector<Core_id> root_cores;
};

/// Switch ids: roots first [0..root_count), then cluster switches. Root
/// cores are attached round-robin over the roots, then cluster cores in
/// cluster order.
[[nodiscard]] Star make_star(const Star_params& p);

} // namespace noc
