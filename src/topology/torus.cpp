#include "topology/torus.h"

#include <stdexcept>

namespace noc {

Topology make_torus(const Torus_params& p)
{
    if (p.width < 2 || p.height < 2)
        throw std::invalid_argument{"make_torus: dimensions must be >= 2"};

    Topology t{"torus" + std::to_string(p.width) + "x" +
                   std::to_string(p.height),
               p.width * p.height};

    for (int y = 0; y < p.height; ++y) {
        for (int x = 0; x < p.width; ++x) {
            const Switch_id sw = torus_switch_at(p, x, y);
            t.set_switch_position(sw, {x * p.tile_mm, y * p.tile_mm});
            for (int c = 0; c < p.cores_per_switch; ++c) t.attach_core(sw);
        }
    }
    for (int y = 0; y < p.height; ++y) {
        for (int x = 0; x < p.width; ++x) {
            const Switch_id sw = torus_switch_at(p, x, y);
            const bool wrap_x = x + 1 == p.width;
            const bool wrap_y = y + 1 == p.height;
            t.add_bidir_link(sw, torus_switch_at(p, (x + 1) % p.width, y),
                             wrap_x ? p.wrap_pipeline_stages : 0);
            t.add_bidir_link(sw, torus_switch_at(p, x, (y + 1) % p.height),
                             wrap_y ? p.wrap_pipeline_stages : 0);
        }
    }
    t.validate();
    return t;
}

} // namespace noc
