// Multicast routing: destination-set trees over a unicast Route_set.
//
// A multicast packet names one DESTINATION SET (Dset_id); the routing layer
// turns each (source, set) pair into a deterministic Mcast_tree — a tree of
// route SEGMENTS whose edges reuse the hop vocabulary of topology/route.h.
// A flit travels one segment exactly like a unicast flit travels its
// source route; exhausting a segment's hops at a switch that is not an
// ejection port means "fork here": the router replicates the flit once per
// child segment (per-branch owned pool copies, arch/flit.h). Leaf segments
// end with the ejection hop of their destination.
//
// Tree construction (multicast_routes) follows Berejuck's survey split:
//   * TREE-BASED first: merge the unicast routes src->d (d in the set) by
//     longest common hop prefix. Because every segment chain is a prefix of
//     some unicast route through the same switches, the channel-dependency
//     edges of a merged tree are a subset of the unicast CDG plus the fork
//     branch edges — on turn-rule route sets (XY, datelines, up*/down*)
//     the tree is admitted by construction.
//   * PATH-BASED fallback: when the branching CDG check
//     (analyze_multicast_deadlock, topology/deadlock.h) rejects the tree,
//     chain the destinations in set order (src -> d0 -> d1 -> ...), each
//     intermediate destination a 2-way fork (eject copy, forward rest).
//   * If both are rejected the set is unroutable and construction throws —
//     deadlock safety is checked, not assumed.
//
// Fork admission note: Router::step copies flits into each branch at that
// branch's own pace (per-branch cursors) and releases each branch's output
// VC with that branch's tail copy — siblings never wait on each other, and
// a multicast packet must fit a router input buffer (enforced at
// injection) so a lagging branch can always drain to its tail from the
// flits parked at the fork. A waiting branch therefore holds only its own
// downstream channel, and the fork's input channel waits on every child —
// exactly the in->child hold-and-wait the branching CDG models, so its
// acyclicity is a sound deadlock-freedom condition for multicast.
#pragma once

#include "topology/graph.h"
#include "topology/route.h"

#include <cstdint>
#include <vector>

namespace noc {

/// One tree segment: a unicast-style hop chain, then either children (the
/// last switch is a fork) or a destination (the last hop is its ejection).
struct Mcast_segment {
    /// Hop chain of this segment. Non-empty except possibly for the root
    /// (a fork at the source switch itself).
    Route hops;
    /// Child segment indices when this segment ends at a fork switch
    /// (>= 2 entries); empty on leaves.
    std::vector<std::uint32_t> children;
    /// Representative destination: on a leaf, THE destination this segment
    /// ejects to; on an interior segment, the first (set-order) destination
    /// in its subtree. Router::step stamps it into each branch copy so a
    /// flit's `dst` is always a real member of the set.
    Core_id dst{};
};

/// One (source, destination-set) multicast tree. Segment 0 is the root,
/// entered at the source switch; `destinations` is the set minus the source
/// itself, in declaration order — the NIs count one delivery per entry.
struct Mcast_tree {
    Core_id src{};
    Dset_id dset{};
    std::vector<Mcast_segment> segments;
    std::vector<Core_id> destinations;
    /// True when tree-based construction was rejected by the deadlock
    /// check and this tree is the path-based (destination-chain) fallback.
    bool path_fallback = false;

    [[nodiscard]] bool empty() const { return segments.empty(); }
};

/// All (source core, destination set) trees of one system, plus the set
/// definitions themselves. Non-owning consumers (NIs) hold a pointer to
/// this table exactly like they hold the unicast Route_set — it must
/// outlive the simulation.
class Mcast_route_set {
public:
    Mcast_route_set() = default;

    [[nodiscard]] int core_count() const
    {
        return static_cast<int>(trees_.size());
    }
    [[nodiscard]] std::size_t dset_count() const { return dsets_.size(); }
    [[nodiscard]] const std::vector<Core_id>& dset(Dset_id d) const
    {
        return dsets_.at(d.get());
    }
    [[nodiscard]] const Mcast_tree& at(Core_id src, Dset_id d) const
    {
        return trees_.at(src.get()).at(d.get());
    }

    /// Construction surface (multicast_routes fills these).
    void resize(int core_count, std::size_t dset_count)
    {
        dsets_.resize(dset_count);
        trees_.assign(static_cast<std::size_t>(core_count),
                      std::vector<Mcast_tree>(dset_count));
    }
    void set_dset(Dset_id d, std::vector<Core_id> members)
    {
        dsets_.at(d.get()) = std::move(members);
    }
    void set(Core_id src, Dset_id d, Mcast_tree tree)
    {
        trees_.at(src.get()).at(d.get()) = std::move(tree);
    }

private:
    std::vector<std::vector<Core_id>> dsets_;
    std::vector<std::vector<Mcast_tree>> trees_; ///< [src][dset]
};

/// Build the all-sources multicast table for `dsets` over `routes`
/// (tree-based with path-based fallback, both admitted through the
/// branching CDG check with `vc_count` VCs — see the header comment).
/// Every tree's destination list is its dset minus the source core; a
/// source whose pruned list is empty gets an empty tree (NIs reject
/// sending on it). Throws when a destination is unreachable, a set holds
/// duplicates, or neither construction passes the deadlock check.
[[nodiscard]] Mcast_route_set
multicast_routes(const Topology& t, const Route_set& routes,
                 const std::vector<std::vector<Core_id>>& dsets,
                 int vc_count);

/// Structural validation of one tree against the topology: segment hops
/// must follow real links, forks must have >= 2 children, leaves must end
/// with the ejection hop of their `dst`, and every declared destination
/// must be reached exactly once. Throws std::invalid_argument on
/// violation. Noc_system runs this on every tree it is handed.
void validate_mcast_tree(const Topology& t, const Mcast_tree& tree,
                         int vc_count);

} // namespace noc
