#include "topology/spidergon.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace noc {

Topology make_spidergon(const Spidergon_params& p)
{
    if (p.node_count < 4 || p.node_count % 2 != 0)
        throw std::invalid_argument{
            "make_spidergon: node_count must be even and >= 4"};

    Topology t{"spidergon" + std::to_string(p.node_count), p.node_count};
    const double radius = p.tile_mm * p.node_count / (2 * std::numbers::pi);
    for (int i = 0; i < p.node_count; ++i) {
        const Switch_id sw{static_cast<std::uint32_t>(i)};
        const double angle = 2 * std::numbers::pi * i / p.node_count;
        t.set_switch_position(sw, {radius * (1 + std::cos(angle)),
                                   radius * (1 + std::sin(angle))});
        for (int c = 0; c < p.cores_per_switch; ++c) t.attach_core(sw);
    }
    for (int i = 0; i < p.node_count; ++i) {
        const Switch_id a{static_cast<std::uint32_t>(i)};
        t.add_bidir_link(a,
                         Switch_id{static_cast<std::uint32_t>(
                             (i + 1) % p.node_count)});
    }
    // Across links (one bidirectional pair per diameter). The across wire
    // spans the die, so give it a pipeline stage.
    for (int i = 0; i < p.node_count / 2; ++i) {
        const Switch_id a{static_cast<std::uint32_t>(i)};
        const Switch_id b{
            static_cast<std::uint32_t>(i + p.node_count / 2)};
        t.add_bidir_link(a, b, 1);
    }
    t.validate();
    return t;
}

} // namespace noc
