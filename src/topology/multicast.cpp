#include "topology/multicast.h"

#include "topology/deadlock.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace noc {

namespace {

[[noreturn]] void fail(const std::string& what)
{
    throw std::invalid_argument{"multicast_routes: " + what};
}

/// Prefix trie over unicast hop sequences. Children keep insertion order
/// (= destination-set order), which fixes the child order of every fork
/// deterministically.
struct Trie_node {
    std::vector<std::pair<Hop, std::uint32_t>> children;
    Core_id terminal{}; ///< destination whose route ends here (leaves only)
};

Mcast_tree build_trie_tree(const Route_set& routes, Core_id src, Dset_id id,
                           const std::vector<Core_id>& dsts)
{
    std::vector<Trie_node> trie(1);
    for (const Core_id d : dsts) {
        const Route& r = routes.at(src, d);
        if (r.empty())
            fail("no unicast route from core " + std::to_string(src.get()) +
                 " to destination " + std::to_string(d.get()));
        std::uint32_t cur = 0;
        for (const Hop& h : r) {
            std::uint32_t next = 0;
            bool found = false;
            for (const auto& [hop, child] : trie[cur].children) {
                if (hop == h) {
                    next = child;
                    found = true;
                    break;
                }
            }
            if (!found) {
                next = static_cast<std::uint32_t>(trie.size());
                trie.emplace_back();
                trie[cur].children.emplace_back(h, next);
            }
            cur = next;
        }
        // Ejection hops are unique per core, so no route is a prefix of
        // another and terminals land on childless leaves.
        trie[cur].terminal = d;
    }

    Mcast_tree tree;
    tree.src = src;
    tree.dset = id;
    tree.destinations = dsts;
    // Collapse single-child chains into segments; >= 2 children = fork.
    auto build = [&](auto&& self, std::uint32_t node,
                     Route prefix) -> std::uint32_t {
        const auto seg_idx =
            static_cast<std::uint32_t>(tree.segments.size());
        tree.segments.emplace_back();
        Route hops = std::move(prefix);
        std::uint32_t n = node;
        while (true) {
            if (trie[n].terminal.is_valid()) {
                tree.segments[seg_idx].dst = trie[n].terminal;
                break;
            }
            if (trie[n].children.size() == 1) {
                hops.push_back(trie[n].children[0].first);
                n = trie[n].children[0].second;
                continue;
            }
            std::vector<std::uint32_t> kids;
            kids.reserve(trie[n].children.size());
            for (const auto& [hop, child] : trie[n].children)
                kids.push_back(self(self, child, Route{hop}));
            tree.segments[seg_idx].dst = tree.segments[kids.front()].dst;
            tree.segments[seg_idx].children = std::move(kids);
            break;
        }
        tree.segments[seg_idx].hops = std::move(hops);
        return seg_idx;
    };
    build(build, 0, Route{});
    return tree;
}

/// Path-based fallback: chain the destinations in set order; every
/// intermediate destination's switch is a fork (eject copies for the
/// destinations at that switch, one continuation for the rest).
Mcast_tree build_path_tree(const Route_set& routes, Core_id src, Dset_id id,
                           const std::vector<Core_id>& dsts)
{
    Mcast_tree tree;
    tree.src = src;
    tree.dset = id;
    tree.destinations = dsts;
    tree.path_fallback = true;
    tree.segments.emplace_back();
    std::uint32_t cur = 0;
    Core_id at = src;
    std::size_t i = 0;
    const std::size_t n = dsts.size();
    while (i < n) {
        const Route& r = routes.at(at, dsts[i]);
        if (r.empty())
            fail("path fallback: no unicast route from core " +
                 std::to_string(at.get()) + " to destination " +
                 std::to_string(dsts[i].get()));
        tree.segments[cur].hops.insert(tree.segments[cur].hops.end(),
                                       r.begin(), r.end() - 1);
        // Now at dsts[i]'s switch; absorb every following destination that
        // shares it (their connecting route is just the ejection hop), so
        // no child segment is ever hopless.
        std::vector<std::pair<Core_id, Hop>> leaves{{dsts[i], r.back()}};
        at = dsts[i];
        ++i;
        while (i < n && routes.at(at, dsts[i]).size() == 1) {
            leaves.emplace_back(dsts[i], routes.at(at, dsts[i]).front());
            at = dsts[i];
            ++i;
        }
        if (i == n && leaves.size() == 1) {
            // Final destination terminates the carrier segment itself.
            tree.segments[cur].hops.push_back(leaves[0].second);
            tree.segments[cur].dst = leaves[0].first;
            break;
        }
        std::vector<std::uint32_t> kids;
        for (const auto& [d, hop] : leaves) {
            kids.push_back(static_cast<std::uint32_t>(tree.segments.size()));
            Mcast_segment leaf;
            leaf.hops.push_back(hop);
            leaf.dst = d;
            tree.segments.push_back(std::move(leaf));
        }
        if (i < n) {
            kids.push_back(static_cast<std::uint32_t>(tree.segments.size()));
            tree.segments.emplace_back(); // continuation, filled next round
        }
        tree.segments[cur].dst = leaves[0].first;
        tree.segments[cur].children = std::move(kids);
        if (i < n) cur = tree.segments[cur].children.back();
    }
    return tree;
}

} // namespace

void validate_mcast_tree(const Topology& t, const Mcast_tree& tree,
                         int vc_count)
{
    auto bad = [&](const std::string& what) {
        throw std::invalid_argument{
            "validate_mcast_tree(src " + std::to_string(tree.src.get()) +
            ", dset " + std::to_string(tree.dset.get()) + "): " + what};
    };
    if (tree.segments.empty()) {
        if (!tree.destinations.empty())
            bad("empty tree with declared destinations");
        return;
    }
    if (tree.destinations.empty()) bad("tree with no destinations");
    if (!tree.src.is_valid() ||
        tree.src.get() >= static_cast<std::uint32_t>(t.core_count()))
        bad("invalid source core");

    std::vector<char> visited(tree.segments.size(), 0);
    std::vector<Core_id> reached;
    struct Item {
        std::uint32_t seg;
        Switch_id sw;
    };
    std::vector<Item> stack{{0u, t.core_switch(tree.src)}};
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        if (item.seg >= tree.segments.size()) bad("child index out of range");
        if (visited[item.seg]) bad("segment visited twice (not a tree)");
        visited[item.seg] = 1;
        const Mcast_segment& seg = tree.segments[item.seg];
        if (!seg.dst.is_valid()) bad("segment without representative dst");
        if (seg.hops.empty() && item.seg != 0)
            bad("non-root segment with no hops");
        const bool is_leaf = seg.children.empty();
        if (!is_leaf && seg.children.size() < 2)
            bad("fork with fewer than 2 branches");
        Switch_id sw = item.sw;
        bool ejected = false;
        for (std::size_t h = 0; h < seg.hops.size(); ++h) {
            const Hop& hop = seg.hops[h];
            if (static_cast<int>(hop.out_vc) >= vc_count)
                bad("hop vc beyond vc_count");
            if (static_cast<int>(hop.out_port) >= t.output_port_count(sw))
                bad("hop output port out of range");
            const Link_id l =
                t.link_of_output_port(sw, Port_id{hop.out_port});
            if (!l.is_valid()) {
                // Ejection: legal only as the last hop of a leaf, aimed at
                // the leaf's own destination.
                if (!is_leaf || h + 1 != seg.hops.size())
                    bad("ejection before the end of a segment");
                if (t.core_switch(seg.dst) != sw ||
                    t.ejection_port_of_core(seg.dst) !=
                        Port_id{hop.out_port})
                    bad("leaf ejects to a port that is not its dst's");
                reached.push_back(seg.dst);
                ejected = true;
            } else {
                sw = t.link(l).to;
            }
        }
        if (is_leaf) {
            if (!ejected) bad("leaf segment does not end with an ejection");
        } else {
            // One send per output per cycle: sibling branches must leave
            // through distinct output ports, or Router::step could never
            // claim them all atomically in one cycle.
            std::vector<std::uint16_t> ports;
            for (const std::uint32_t c : seg.children) {
                if (c >= tree.segments.size())
                    bad("child index out of range");
                if (tree.segments[c].hops.empty())
                    bad("non-root segment with no hops");
                ports.push_back(tree.segments[c].hops.front().out_port);
                stack.push_back({c, sw});
            }
            std::sort(ports.begin(), ports.end());
            if (std::adjacent_find(ports.begin(), ports.end()) !=
                ports.end())
                bad("fork branches share an output port");
        }
    }
    for (std::size_t s = 0; s < tree.segments.size(); ++s)
        if (!visited[s]) bad("unreachable segment");

    std::vector<Core_id> want = tree.destinations;
    std::vector<Core_id> got = reached;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (std::adjacent_find(want.begin(), want.end()) != want.end())
        bad("duplicate destination in set");
    if (want != got)
        bad("leaf destinations do not match the declared set");
    for (const Core_id d : want) {
        if (!d.is_valid() ||
            d.get() >= static_cast<std::uint32_t>(t.core_count()))
            bad("destination core out of range");
        if (d == tree.src) bad("source listed as its own destination");
    }
}

Mcast_route_set multicast_routes(const Topology& t, const Route_set& routes,
                                 const std::vector<std::vector<Core_id>>& dsets,
                                 int vc_count)
{
    if (vc_count <= 0) fail("vc_count <= 0");
    const int cores = t.core_count();
    if (routes.core_count() != cores)
        fail("route set core count does not match topology");

    Mcast_route_set out;
    out.resize(cores, dsets.size());
    for (std::size_t di = 0; di < dsets.size(); ++di) {
        std::vector<Core_id> members = dsets[di];
        std::sort(members.begin(), members.end());
        if (std::adjacent_find(members.begin(), members.end()) !=
            members.end())
            fail("destination set " + std::to_string(di) +
                 " holds duplicates");
        for (const Core_id c : members)
            if (!c.is_valid() ||
                c.get() >= static_cast<std::uint32_t>(cores))
                fail("destination set " + std::to_string(di) +
                     " member out of range");
        out.set_dset(Dset_id{static_cast<std::uint32_t>(di)}, dsets[di]);
    }

    // A trie-merged tree's CDG edges are a subset of the unicast CDG (each
    // segment chain and each fork branch continues some unicast route), so
    // when the unicast routes are acyclic every trie tree is admitted for
    // free and only path fallbacks need an incremental re-check. When the
    // unicast set itself is cyclic (e.g. raw shortest paths), every tree
    // is checked against the union of the already-admitted ones.
    const bool unicast_ok = analyze_deadlock(t, routes, vc_count).acyclic;
    std::vector<const Mcast_tree*> checked; // trees carrying novel edges

    for (std::size_t di = 0; di < dsets.size(); ++di) {
        const Dset_id id{static_cast<std::uint32_t>(di)};
        for (int s = 0; s < cores; ++s) {
            const Core_id src{static_cast<std::uint32_t>(s)};
            std::vector<Core_id> dsts;
            for (const Core_id c : dsets[di])
                if (c != src) dsts.push_back(c);
            if (dsts.empty()) continue; // empty tree: nothing to send

            // Tree-based first; structural rejection (e.g. sibling
            // branches on one output port, possible on dateline route
            // sets) falls back to the path construction like a deadlock
            // rejection does.
            Mcast_tree tree;
            bool admitted = false;
            try {
                tree = build_trie_tree(routes, src, id, dsts);
                validate_mcast_tree(t, tree, vc_count);
                admitted = unicast_ok;
                if (!admitted) {
                    auto candidate = checked;
                    candidate.push_back(&tree);
                    admitted = analyze_multicast_deadlock(t, nullptr,
                                                          candidate,
                                                          vc_count)
                                   .acyclic;
                }
            } catch (const std::invalid_argument&) {
                admitted = false;
            }
            if (!admitted) {
                tree = build_path_tree(routes, src, id, dsts);
                validate_mcast_tree(t, tree, vc_count);
                auto candidate = checked;
                candidate.push_back(&tree);
                if (!analyze_multicast_deadlock(
                         t, unicast_ok ? &routes : nullptr, candidate,
                         vc_count)
                         .acyclic)
                    fail("set " + std::to_string(di) + " from core " +
                         std::to_string(s) +
                         ": neither tree nor path construction is "
                         "deadlock-free");
            }
            const bool novel = tree.path_fallback || !unicast_ok;
            out.set(src, id, std::move(tree));
            if (novel) checked.push_back(&out.at(src, id));
        }
    }
    return out;
}

} // namespace noc
