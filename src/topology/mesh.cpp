#include "topology/mesh.h"

#include <stdexcept>

namespace noc {

Topology make_mesh(const Mesh_params& p)
{
    if (p.width <= 0 || p.height <= 0 || p.cores_per_switch < 0)
        throw std::invalid_argument{"make_mesh: bad parameters"};

    Topology t{"mesh" + std::to_string(p.width) + "x" +
                   std::to_string(p.height),
               p.width * p.height};

    for (int y = 0; y < p.height; ++y) {
        for (int x = 0; x < p.width; ++x) {
            const Switch_id sw = mesh_switch_at(p, x, y);
            t.set_switch_position(sw, {x * p.tile_mm, y * p.tile_mm});
            for (int c = 0; c < p.cores_per_switch; ++c) t.attach_core(sw);
        }
    }
    // East/west then north/south, both directions.
    for (int y = 0; y < p.height; ++y) {
        for (int x = 0; x < p.width; ++x) {
            const Switch_id sw = mesh_switch_at(p, x, y);
            if (x + 1 < p.width)
                t.add_bidir_link(sw, mesh_switch_at(p, x + 1, y),
                                 p.link_pipeline_stages);
            if (y + 1 < p.height)
                t.add_bidir_link(sw, mesh_switch_at(p, x, y + 1),
                                 p.link_pipeline_stages);
        }
    }
    t.validate();
    return t;
}

} // namespace noc
