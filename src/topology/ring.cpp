#include "topology/ring.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace noc {

Topology make_ring(const Ring_params& p)
{
    if (p.node_count < 3)
        throw std::invalid_argument{"make_ring: need at least 3 nodes"};

    Topology t{"ring" + std::to_string(p.node_count), p.node_count};
    const double radius = p.tile_mm * p.node_count / (2 * std::numbers::pi);
    for (int i = 0; i < p.node_count; ++i) {
        const Switch_id sw{static_cast<std::uint32_t>(i)};
        const double angle = 2 * std::numbers::pi * i / p.node_count;
        t.set_switch_position(sw, {radius * (1 + std::cos(angle)),
                                   radius * (1 + std::sin(angle))});
        for (int c = 0; c < p.cores_per_switch; ++c) t.attach_core(sw);
    }
    for (int i = 0; i < p.node_count; ++i) {
        const Switch_id a{static_cast<std::uint32_t>(i)};
        const Switch_id b{
            static_cast<std::uint32_t>((i + 1) % p.node_count)};
        t.add_bidir_link(a, b);
    }
    t.validate();
    return t;
}

} // namespace noc
