// Channel-dependency-graph (CDG) deadlock analysis.
//
// DESIGN.md: "Deadlock safety is checked, not assumed." For deterministic
// routing, the network is deadlock-free iff the dependency graph over
// virtual channels is acyclic (Dally & Seitz). Nodes are (link, vc) pairs;
// a route holding (l1, v1) while requesting (l2, v2) adds the edge
// (l1,v1) -> (l2,v2). Injection and ejection queues are sources/sinks and
// add no edges (message-level request/response coupling is broken by
// traffic-class VC separation, checked per class by the caller).
#pragma once

#include "topology/graph.h"
#include "topology/multicast.h"
#include "topology/route.h"

#include <set>
#include <string>
#include <vector>

namespace noc {

struct Deadlock_report {
    bool acyclic = true;
    /// When cyclic: one (link id, vc) cycle as evidence, in order.
    std::vector<std::pair<Link_id, std::uint16_t>> cycle;

    [[nodiscard]] std::string to_string(const Topology& t) const;
};

/// Analyze the dependencies induced by `routes` on `t` with `vc_count`
/// virtual channels per link.
[[nodiscard]] Deadlock_report analyze_deadlock(const Topology& t,
                                               const Route_set& routes,
                                               int vc_count);

/// Convenience: true iff acyclic.
[[nodiscard]] bool routes_deadlock_free(const Topology& t,
                                        const Route_set& routes,
                                        int vc_count);

/// Analyze dependencies of an explicit list of (src core, route) pairs —
/// used by synthesis, which routes only the application's flows rather than
/// all pairs.
[[nodiscard]] Deadlock_report
analyze_deadlock_flows(const Topology& t,
                       const std::vector<std::pair<Core_id, Route>>& flows,
                       int vc_count);

/// Analyze the UNION of several route functions coexisting in flight —
/// the admission check for an epoch-based live reroute, where packets
/// stamped with an old route epoch finish on their old routes while new
/// injections follow the failure-aware ones. The network is deadlock-free
/// during the transition iff the union CDG is acyclic.
///
/// `failed_links` prunes dependencies no surviving packet can exert: the
/// stranded-packet purge dooms every packet that still has to cross a
/// failed link, so a route through a failure only contributes the channel
/// dependencies strictly after its LAST failed hop (the only suffix a
/// surviving packet can occupy). Route sets that avoid the failed links
/// (the new epoch's) contribute every edge unchanged.
[[nodiscard]] Deadlock_report
analyze_union_deadlock(const Topology& t,
                       const std::vector<const Route_set*>& route_sets,
                       int vc_count, const std::set<Link_id>& failed_links);

/// Analyze BRANCHING routes: the CDG of multicast trees
/// (topology/multicast.h), optionally unioned with the unicast route set
/// they coexist with (`unicast` may be nullptr for a trees-only check).
/// A tree contributes the consecutive-hop edges along every segment plus,
/// at each fork, one edge from the incoming channel to EACH child
/// segment's first channel — the input slot frees only when the slowest
/// branch has copied it. Branches themselves copy at their own pace and
/// release their output VCs independently (arch/router.h phase 1b), so no
/// sibling edges exist and acyclicity of this graph is a sound admission
/// for multicast (see multicast.h).
[[nodiscard]] Deadlock_report
analyze_multicast_deadlock(const Topology& t, const Route_set* unicast,
                           const std::vector<const Mcast_tree*>& trees,
                           int vc_count);

} // namespace noc
