// Deterministic routing-function computation.
//
// Every function returns a full all-pairs Route_set for the ×pipes-style
// source-routing NIs. Deadlock freedom is by construction (dimension order,
// datelines, up*/down*) and is independently verifiable with
// topology/deadlock.h — the test suite checks every generated route set.
//
// Virtual-channel conventions:
//   * mesh XY, up*/down*, shortest-path: single VC class (vc 0);
//   * torus / ring / spidergon: two VCs (dateline scheme) — flits start on
//     vc 0 and move to vc 1 when crossing the dateline of the ring they are
//     traversing.
#pragma once

#include "topology/fat_tree.h"
#include "topology/graph.h"
#include "topology/mesh.h"
#include "topology/ring.h"
#include "topology/route.h"
#include "topology/spidergon.h"
#include "topology/star.h"
#include "topology/torus.h"

#include <vector>

namespace noc {

/// Dimension-order XY routing on a mesh.
[[nodiscard]] Route_set xy_routes(const Topology& t, const Mesh_params& p);

/// Dimension-order routing with dateline VCs on a torus (needs >= 2 VCs).
[[nodiscard]] Route_set torus_routes(const Topology& t,
                                     const Torus_params& p);

/// Shortest-direction ring routing with a dateline VC (needs >= 2 VCs).
[[nodiscard]] Route_set ring_routes(const Topology& t, const Ring_params& p);

/// Spidergon "across-first": take the across link when the ring distance
/// exceeds N/4, then ring routing with datelines (needs >= 2 VCs).
[[nodiscard]] Route_set spidergon_routes(const Topology& t,
                                         const Spidergon_params& p);

/// Up*/down* routing: ascend in rank, then descend; never down->up. The
/// rank order (rank, switch id) must be strict for links, which makes the
/// "up" orientation acyclic and the routing deadlock-free on one VC.
[[nodiscard]] Route_set updown_routes(const Topology& t,
                                      const std::vector<int>& switch_rank);

/// Plain BFS shortest paths, no deadlock guarantee. Used as a baseline and
/// as a negative control in the deadlock-checker tests.
[[nodiscard]] Route_set shortest_path_routes(const Topology& t);

/// Rank assignment for up*/down* on arbitrary graphs: BFS from `root`,
/// rank = -depth (root highest).
[[nodiscard]] std::vector<int> spanning_tree_ranks(const Topology& t,
                                                   Switch_id root);

/// The unique link from -> to; throws if absent or ambiguous.
[[nodiscard]] Link_id find_link(const Topology& t, Switch_id from,
                                Switch_id to);

/// Switch sequence a route visits, starting at the source core's switch.
[[nodiscard]] std::vector<Switch_id>
route_switch_path(const Topology& t, Core_id src, const Route& route);

} // namespace noc
