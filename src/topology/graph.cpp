#include "topology/graph.h"

#include <algorithm>
#include <stdexcept>

namespace noc {

Topology::Topology(std::string name, int switch_count) : name_{std::move(name)}
{
    if (switch_count <= 0)
        throw std::invalid_argument{"Topology: switch_count must be > 0"};
    switch_cores_.resize(static_cast<std::size_t>(switch_count));
    out_links_.resize(static_cast<std::size_t>(switch_count));
    in_links_.resize(static_cast<std::size_t>(switch_count));
    positions_.resize(static_cast<std::size_t>(switch_count));
}

Core_id Topology::attach_core(Switch_id sw)
{
    if (sw.get() >= switch_cores_.size())
        throw std::out_of_range{"Topology::attach_core: bad switch"};
    const Core_id id{static_cast<std::uint32_t>(core_attach_.size())};
    core_attach_.push_back(sw);
    switch_cores_[sw.get()].push_back(id);
    return id;
}

Link_id Topology::add_link(Switch_id from, Switch_id to, int pipeline_stages)
{
    if (from.get() >= out_links_.size() || to.get() >= in_links_.size())
        throw std::out_of_range{"Topology::add_link: bad switch"};
    if (from == to)
        throw std::invalid_argument{"Topology::add_link: self loop"};
    if (pipeline_stages < 0)
        throw std::invalid_argument{"Topology::add_link: negative stages"};
    const Link_id id{static_cast<std::uint32_t>(links_.size())};
    links_.push_back({from, to, pipeline_stages});
    out_links_[from.get()].push_back(id);
    in_links_[to.get()].push_back(id);
    return id;
}

void Topology::add_bidir_link(Switch_id a, Switch_id b, int pipeline_stages)
{
    add_link(a, b, pipeline_stages);
    add_link(b, a, pipeline_stages);
}

void Topology::set_switch_position(Switch_id sw, Point p)
{
    positions_.at(sw.get()) = p;
}

void Topology::set_link_pipeline_stages(Link_id link, int stages)
{
    if (stages < 0)
        throw std::invalid_argument{"set_link_pipeline_stages: negative"};
    links_.at(link.get()).pipeline_stages = stages;
}

std::optional<Point> Topology::switch_position(Switch_id sw) const
{
    return positions_.at(sw.get());
}

int Topology::output_port_count(Switch_id sw) const
{
    return static_cast<int>(switch_cores_[sw.get()].size() +
                            out_links_[sw.get()].size());
}

int Topology::input_port_count(Switch_id sw) const
{
    return static_cast<int>(switch_cores_[sw.get()].size() +
                            in_links_[sw.get()].size());
}

Port_id Topology::output_port_of_link(Link_id link) const
{
    const auto& l = links_.at(link.get());
    const auto& outs = out_links_[l.from.get()];
    const auto it = std::find(outs.begin(), outs.end(), link);
    const auto local = switch_cores_[l.from.get()].size();
    return Port_id{static_cast<std::uint16_t>(
        local + static_cast<std::size_t>(it - outs.begin()))};
}

Port_id Topology::input_port_of_link(Link_id link) const
{
    const auto& l = links_.at(link.get());
    const auto& ins = in_links_[l.to.get()];
    const auto it = std::find(ins.begin(), ins.end(), link);
    const auto local = switch_cores_[l.to.get()].size();
    return Port_id{static_cast<std::uint16_t>(
        local + static_cast<std::size_t>(it - ins.begin()))};
}

Port_id Topology::ejection_port_of_core(Core_id c) const
{
    const Switch_id sw = core_attach_.at(c.get());
    const auto& cores = switch_cores_[sw.get()];
    const auto it = std::find(cores.begin(), cores.end(), c);
    return Port_id{static_cast<std::uint16_t>(it - cores.begin())};
}

Port_id Topology::injection_port_of_core(Core_id c) const
{
    // Injection and ejection local indices coincide by construction.
    return ejection_port_of_core(c);
}

Link_id Topology::link_of_output_port(Switch_id sw, Port_id port) const
{
    const auto local = switch_cores_[sw.get()].size();
    if (port.get() < local) return Link_id::invalid();
    const auto idx = static_cast<std::size_t>(port.get()) - local;
    return out_links_[sw.get()].at(idx);
}

int Topology::max_radix() const
{
    int radix = 0;
    for (int s = 0; s < switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        radix = std::max({radix, output_port_count(sw), input_port_count(sw)});
    }
    return radix;
}

void Topology::validate() const
{
    for (const auto& l : links_) {
        if (l.from.get() >= out_links_.size() ||
            l.to.get() >= in_links_.size())
            throw std::logic_error{"Topology: link references bad switch"};
    }
    for (std::size_t c = 0; c < core_attach_.size(); ++c) {
        const auto sw = core_attach_[c];
        const auto& cores = switch_cores_.at(sw.get());
        if (std::find(cores.begin(), cores.end(),
                      Core_id{static_cast<std::uint32_t>(c)}) == cores.end())
            throw std::logic_error{"Topology: core attachment inconsistent"};
    }
}

} // namespace noc
