// 2D mesh generator — the workhorse NoC topology (RAW, Teraflops, TILE-Gx).
#pragma once

#include "topology/graph.h"

namespace noc {

struct Mesh_params {
    int width = 4;
    int height = 4;
    /// Cores attached per switch ("concentration"); 1 for CMP-style meshes.
    int cores_per_switch = 1;
    /// Tile pitch in mm used for switch positions (physical models).
    double tile_mm = 1.0;
    int link_pipeline_stages = 0;
};

/// Switch at (x, y) has id y*width + x; cores are attached switch-major.
[[nodiscard]] Topology make_mesh(const Mesh_params& p);

/// Convenience accessors for mesh coordinates.
[[nodiscard]] inline Switch_id mesh_switch_at(const Mesh_params& p, int x,
                                              int y)
{
    return Switch_id{static_cast<std::uint32_t>(y * p.width + x)};
}

} // namespace noc
