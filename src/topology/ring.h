// Bidirectional ring generator.
#pragma once

#include "topology/graph.h"

namespace noc {

struct Ring_params {
    int node_count = 8;
    int cores_per_switch = 1;
    double tile_mm = 1.0;
};

[[nodiscard]] Topology make_ring(const Ring_params& p);

} // namespace noc
