#include "topology/deadlock.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace noc {

namespace {

/// Dependency edges between (link, vc) states, deduplicated.
class Cdg {
public:
    Cdg(int link_count, int vc_count)
        : vc_count_{vc_count},
          adjacency_(static_cast<std::size_t>(link_count) *
                     static_cast<std::size_t>(vc_count))
    {
    }

    [[nodiscard]] int node_of(Link_id l, std::uint16_t vc) const
    {
        return static_cast<int>(l.get()) * vc_count_ + vc;
    }

    void add_edge(int a, int b)
    {
        auto& out = adjacency_[static_cast<std::size_t>(a)];
        if (std::find(out.begin(), out.end(), b) == out.end())
            out.push_back(b);
    }

    /// Iterative three-color DFS; returns a cycle (node list) if one exists.
    [[nodiscard]] std::vector<int> find_cycle() const
    {
        const auto n = adjacency_.size();
        std::vector<char> color(n, 0); // 0 white, 1 gray, 2 black
        std::vector<int> stack;
        std::vector<std::size_t> edge_pos(n, 0);
        for (std::size_t start = 0; start < n; ++start) {
            if (color[start] != 0) continue;
            stack.push_back(static_cast<int>(start));
            color[start] = 1;
            while (!stack.empty()) {
                const auto u = static_cast<std::size_t>(stack.back());
                if (edge_pos[u] < adjacency_[u].size()) {
                    const int v = adjacency_[u][edge_pos[u]++];
                    const auto vu = static_cast<std::size_t>(v);
                    if (color[vu] == 0) {
                        color[vu] = 1;
                        stack.push_back(v);
                    } else if (color[vu] == 1) {
                        // Extract the cycle from the gray stack.
                        auto it = std::find(stack.begin(), stack.end(), v);
                        return {it, stack.end()};
                    }
                } else {
                    color[u] = 2;
                    stack.pop_back();
                }
            }
        }
        return {};
    }

    [[nodiscard]] int vc_count() const { return vc_count_; }

private:
    int vc_count_;
    std::vector<std::vector<int>> adjacency_;
};

void add_route_dependencies(Cdg& cdg, const Topology& t, Core_id src,
                            const Route& route, int vc_count)
{
    Switch_id sw = t.core_switch(src);
    int prev_node = -1;
    for (const Hop& h : route) {
        const Link_id l = t.link_of_output_port(sw, Port_id{h.out_port});
        if (!l.is_valid()) break; // ejection: sink, no further dependency
        if (static_cast<int>(h.out_vc) >= vc_count)
            throw std::invalid_argument{
                "analyze_deadlock: route uses vc beyond vc_count"};
        const int node = cdg.node_of(l, h.out_vc);
        if (prev_node >= 0) cdg.add_edge(prev_node, node);
        prev_node = node;
        sw = t.link(l).to;
    }
}

/// Like add_route_dependencies, but only the suffix of the route strictly
/// after its last failed link contributes edges: anything holding a channel
/// at or before a failed hop is doomed by the purge and cannot take part in
/// a deadlock among survivors.
void add_surviving_route_dependencies(Cdg& cdg, const Topology& t,
                                      Core_id src, const Route& route,
                                      int vc_count,
                                      const std::set<Link_id>& failed)
{
    // Collect the (link, vc) node sequence first so we can locate the last
    // failed hop before emitting edges.
    std::vector<int> nodes;
    std::size_t last_failed = 0;
    bool any_failed = false;
    Switch_id sw = t.core_switch(src);
    for (const Hop& h : route) {
        const Link_id l = t.link_of_output_port(sw, Port_id{h.out_port});
        if (!l.is_valid()) break; // ejection: sink, no further dependency
        if (static_cast<int>(h.out_vc) >= vc_count)
            throw std::invalid_argument{
                "analyze_union_deadlock: route uses vc beyond vc_count"};
        if (failed.count(l)) {
            last_failed = nodes.size();
            any_failed = true;
        }
        nodes.push_back(cdg.node_of(l, h.out_vc));
        sw = t.link(l).to;
    }
    const std::size_t first = any_failed ? last_failed + 1 : 0;
    for (std::size_t i = first; i + 1 < nodes.size(); ++i)
        cdg.add_edge(nodes[i], nodes[i + 1]);
}

/// Dependencies of one multicast tree: consecutive-hop edges along every
/// segment, and at each fork an edge from the incoming channel to each
/// child's first channel. The router frees a fork's input slot only when
/// the SLOWEST branch has copied it (per-branch cursors, arch/router.h
/// phase 1b), so the input channel depends on every child — and on
/// nothing else: branches copy at their own pace and release their output
/// VCs with their own tail copy, so there are no sibling wait-for edges
/// to model.
void add_tree_dependencies(Cdg& cdg, const Topology& t,
                           const Mcast_tree& tree, int vc_count)
{
    if (tree.segments.empty()) return;
    struct Item {
        std::uint32_t seg;
        Switch_id sw;
        int prev_node;
    };
    std::vector<Item> stack{{0u, t.core_switch(tree.src), -1}};
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        const Mcast_segment& seg = tree.segments.at(item.seg);
        Switch_id sw = item.sw;
        int prev_node = item.prev_node;
        bool ejected = false;
        for (const Hop& h : seg.hops) {
            const Link_id l = t.link_of_output_port(sw, Port_id{h.out_port});
            if (!l.is_valid()) {
                ejected = true; // ejection: sink, no further dependency
                break;
            }
            if (static_cast<int>(h.out_vc) >= vc_count)
                throw std::invalid_argument{
                    "analyze_multicast_deadlock: tree uses vc beyond "
                    "vc_count"};
            const int node = cdg.node_of(l, h.out_vc);
            if (prev_node >= 0) cdg.add_edge(prev_node, node);
            prev_node = node;
            sw = t.link(l).to;
        }
        if (ejected) continue;
        for (const std::uint32_t c : seg.children)
            stack.push_back({c, sw, prev_node});
    }
}

Deadlock_report report_from(const Cdg& cdg, int vc_count)
{
    Deadlock_report rep;
    const auto cycle = cdg.find_cycle();
    rep.acyclic = cycle.empty();
    for (const int node : cycle)
        rep.cycle.emplace_back(
            Link_id{static_cast<std::uint32_t>(node / vc_count)},
            static_cast<std::uint16_t>(node % vc_count));
    return rep;
}

} // namespace

std::string Deadlock_report::to_string(const Topology& t) const
{
    if (acyclic) return "deadlock-free";
    std::string s = "cycle:";
    for (const auto& [link, vc] : cycle) {
        s += " (" + std::to_string(t.link(link).from.get()) + "->" +
             std::to_string(t.link(link).to.get()) + ",vc" +
             std::to_string(vc) + ")";
    }
    return s;
}

Deadlock_report analyze_deadlock(const Topology& t, const Route_set& routes,
                                 int vc_count)
{
    if (vc_count <= 0)
        throw std::invalid_argument{"analyze_deadlock: vc_count <= 0"};
    Cdg cdg{t.link_count(), vc_count};
    for (int s = 0; s < routes.core_count(); ++s) {
        for (int d = 0; d < routes.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            add_route_dependencies(cdg, t, src, routes.at(src, dst),
                                   vc_count);
        }
    }
    return report_from(cdg, vc_count);
}

bool routes_deadlock_free(const Topology& t, const Route_set& routes,
                          int vc_count)
{
    return analyze_deadlock(t, routes, vc_count).acyclic;
}

Deadlock_report
analyze_deadlock_flows(const Topology& t,
                       const std::vector<std::pair<Core_id, Route>>& flows,
                       int vc_count)
{
    if (vc_count <= 0)
        throw std::invalid_argument{"analyze_deadlock_flows: vc_count <= 0"};
    Cdg cdg{t.link_count(), vc_count};
    for (const auto& [src, route] : flows)
        add_route_dependencies(cdg, t, src, route, vc_count);
    return report_from(cdg, vc_count);
}

Deadlock_report
analyze_union_deadlock(const Topology& t,
                       const std::vector<const Route_set*>& route_sets,
                       int vc_count, const std::set<Link_id>& failed_links)
{
    if (vc_count <= 0)
        throw std::invalid_argument{"analyze_union_deadlock: vc_count <= 0"};
    Cdg cdg{t.link_count(), vc_count};
    for (const Route_set* routes : route_sets) {
        if (routes == nullptr)
            throw std::invalid_argument{
                "analyze_union_deadlock: null route set"};
        for (int s = 0; s < routes->core_count(); ++s) {
            for (int d = 0; d < routes->core_count(); ++d) {
                if (s == d) continue;
                const Core_id src{static_cast<std::uint32_t>(s)};
                const Core_id dst{static_cast<std::uint32_t>(d)};
                const Route& r = routes->at(src, dst);
                if (r.empty()) continue; // unreachable pair: no packets
                add_surviving_route_dependencies(cdg, t, src, r, vc_count,
                                                 failed_links);
            }
        }
    }
    return report_from(cdg, vc_count);
}

Deadlock_report
analyze_multicast_deadlock(const Topology& t, const Route_set* unicast,
                           const std::vector<const Mcast_tree*>& trees,
                           int vc_count)
{
    if (vc_count <= 0)
        throw std::invalid_argument{
            "analyze_multicast_deadlock: vc_count <= 0"};
    Cdg cdg{t.link_count(), vc_count};
    if (unicast != nullptr) {
        for (int s = 0; s < unicast->core_count(); ++s) {
            for (int d = 0; d < unicast->core_count(); ++d) {
                if (s == d) continue;
                const Core_id src{static_cast<std::uint32_t>(s)};
                const Core_id dst{static_cast<std::uint32_t>(d)};
                add_route_dependencies(cdg, t, src, unicast->at(src, dst),
                                       vc_count);
            }
        }
    }
    for (const Mcast_tree* tree : trees) {
        if (tree == nullptr)
            throw std::invalid_argument{
                "analyze_multicast_deadlock: null tree"};
        add_tree_dependencies(cdg, t, *tree, vc_count);
    }
    return report_from(cdg, vc_count);
}

} // namespace noc
