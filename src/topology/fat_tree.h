// k-ary n-tree (fat tree) generator — the SPIN project's topology ([3] in
// the paper used a fat tree to build one of the first NoCs).
//
// A k-ary n-tree has k^n cores and n levels of k^(n-1) switches. Level 0 is
// nearest the cores; level n-1 switches are the roots. Every non-root switch
// has k down ports and k up ports; roots have k down ports.
#pragma once

#include "topology/graph.h"

#include <vector>

namespace noc {

struct Fat_tree_params {
    int arity = 2;  ///< k
    int levels = 2; ///< n
    double tile_mm = 1.0;
};

struct Fat_tree {
    Topology topology;
    /// Rank used by up*/down* routing: switch level (roots highest).
    std::vector<int> switch_rank;
};

[[nodiscard]] Fat_tree make_fat_tree(const Fat_tree_params& p);

} // namespace noc
