// Source routes.
//
// ×pipes uses source routing: the initiator NI's look-up table stores, for
// each destination, the full sequence of output ports the head flit must
// request at every switch along the path (§3). We extend each hop with the
// virtual channel to use on the *outgoing* link, which lets deterministic
// routing functions encode dateline VC transitions (torus/ring/spidergon)
// without a separate VC allocator.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <vector>

namespace noc {

struct Hop {
    std::uint16_t out_port = 0; ///< output port to request at this switch
    std::uint16_t out_vc = 0;   ///< VC to occupy on the outgoing channel

    friend constexpr bool operator==(const Hop&, const Hop&) = default;
};

/// Port/VC sequence from the source switch to the destination ejection port
/// (last hop's out_port is the ejection port at the destination switch).
using Route = std::vector<Hop>;

/// All-pairs route table indexed by [src_core][dst_core]. The diagonal is
/// left empty (cores do not send to themselves through the network).
class Route_set {
public:
    Route_set() = default;
    explicit Route_set(int core_count)
        : routes_(static_cast<std::size_t>(core_count),
                  std::vector<Route>(static_cast<std::size_t>(core_count)))
    {
    }

    [[nodiscard]] int core_count() const
    {
        return static_cast<int>(routes_.size());
    }
    [[nodiscard]] const Route& at(Core_id src, Core_id dst) const
    {
        return routes_.at(src.get()).at(dst.get());
    }
    void set(Core_id src, Core_id dst, Route r)
    {
        routes_.at(src.get()).at(dst.get()) = std::move(r);
    }

private:
    std::vector<std::vector<Route>> routes_;
};

} // namespace noc
