#include "topology/star.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace noc {

Star make_star(const Star_params& p)
{
    if (p.clusters < 1 || p.cores_per_cluster < 0 || p.root_count < 1 ||
        p.cores_at_root < 0)
        throw std::invalid_argument{"make_star: bad parameters"};

    const int switch_count = p.root_count + p.clusters;
    Topology t{"star_c" + std::to_string(p.clusters) + "_r" +
                   std::to_string(p.root_count),
               switch_count};

    const double span = p.tile_mm * std::max(2, p.clusters);
    for (int r = 0; r < p.root_count; ++r)
        t.set_switch_position(Switch_id{static_cast<std::uint32_t>(r)},
                              {span / 2, span / 2 + r * p.tile_mm});
    for (int c = 0; c < p.clusters; ++c) {
        const double angle = 2 * std::numbers::pi * c / p.clusters;
        t.set_switch_position(
            Switch_id{static_cast<std::uint32_t>(p.root_count + c)},
            {span / 2 * (1 + std::cos(angle)),
             span / 2 * (1 + std::sin(angle))});
    }

    Star result{std::move(t), {}, {}};
    Topology& topo = result.topology;

    for (int m = 0; m < p.cores_at_root; ++m)
        result.root_cores.push_back(topo.attach_core(
            Switch_id{static_cast<std::uint32_t>(m % p.root_count)}));
    for (int c = 0; c < p.clusters; ++c)
        for (int i = 0; i < p.cores_per_cluster; ++i)
            topo.attach_core(
                Switch_id{static_cast<std::uint32_t>(p.root_count + c)});

    for (int c = 0; c < p.clusters; ++c)
        for (int r = 0; r < p.root_count; ++r)
            topo.add_bidir_link(
                Switch_id{static_cast<std::uint32_t>(p.root_count + c)},
                Switch_id{static_cast<std::uint32_t>(r)});
    // Chain the root crossbars so root-attached cores (the BONE SRAMs) can
    // reach each other without a down->up turn, keeping up*/down* routing
    // complete (ties between equal-rank roots break on switch id).
    for (int r = 0; r + 1 < p.root_count; ++r)
        topo.add_bidir_link(Switch_id{static_cast<std::uint32_t>(r)},
                            Switch_id{static_cast<std::uint32_t>(r + 1)});

    result.switch_rank.assign(static_cast<std::size_t>(switch_count), 0);
    for (int r = 0; r < p.root_count; ++r)
        result.switch_rank[static_cast<std::size_t>(r)] = 1;

    topo.validate();
    return result;
}

} // namespace noc
