// Spidergon generator (ST Microelectronics, [22] in the paper): an even-size
// bidirectional ring plus "across" links connecting each node to the
// diametrically opposite one. Constant degree 3, good diameter/cost tradeoff
// for mid-size SoCs.
#pragma once

#include "topology/graph.h"

namespace noc {

struct Spidergon_params {
    int node_count = 8; ///< must be even and >= 4
    int cores_per_switch = 1;
    double tile_mm = 1.0;
};

[[nodiscard]] Topology make_spidergon(const Spidergon_params& p);

} // namespace noc
