// 2D torus generator (mesh with wrap-around links).
#pragma once

#include "topology/graph.h"

namespace noc {

struct Torus_params {
    int width = 4;
    int height = 4;
    int cores_per_switch = 1;
    double tile_mm = 1.0;
    /// Wrap links are physically long; give them extra pipelining by default.
    int wrap_pipeline_stages = 1;
};

[[nodiscard]] Topology make_torus(const Torus_params& p);

[[nodiscard]] inline Switch_id torus_switch_at(const Torus_params& p, int x,
                                               int y)
{
    return Switch_id{static_cast<std::uint32_t>(y * p.width + x)};
}

} // namespace noc
