#include "topology/fat_tree.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace noc {

namespace {

int ipow(int base, int exp)
{
    int r = 1;
    for (int i = 0; i < exp; ++i) r *= base;
    return r;
}

} // namespace

Fat_tree make_fat_tree(const Fat_tree_params& p)
{
    if (p.arity < 2 || p.levels < 1)
        throw std::invalid_argument{"make_fat_tree: arity>=2, levels>=1"};

    const int k = p.arity;
    const int n = p.levels;
    const int switches_per_level = ipow(k, n - 1);
    const int switch_count = n * switches_per_level;
    const int core_count = ipow(k, n);

    Topology t{"fat_tree_k" + std::to_string(k) + "_n" + std::to_string(n),
               switch_count};

    auto switch_at = [&](int level, int w) {
        return Switch_id{
            static_cast<std::uint32_t>(level * switches_per_level + w)};
    };

    // Positions: levels stacked vertically, switches spread horizontally.
    for (int l = 0; l < n; ++l)
        for (int w = 0; w < switches_per_level; ++w)
            t.set_switch_position(
                switch_at(l, w),
                {(w + 0.5) * p.tile_mm * core_count / switches_per_level,
                 (l + 1) * p.tile_mm});

    // Cores: core c (base-k digits c_{n-1}..c_0) attaches to level-0 switch
    // with index c / k (digits c_{n-1}..c_1).
    for (int c = 0; c < core_count; ++c) t.attach_core(switch_at(0, c / k));

    // A level-l switch with digit vector w (n-1 digits, w[0] least
    // significant) connects upward to the k level-(l+1) switches whose digit
    // vectors agree with w everywhere except position l.
    for (int l = 0; l + 1 < n; ++l) {
        for (int w = 0; w < switches_per_level; ++w) {
            const int stride = ipow(k, l);
            const int digit = (w / stride) % k;
            const int base = w - digit * stride;
            for (int d = 0; d < k; ++d) {
                const int upper = base + d * stride;
                t.add_bidir_link(switch_at(l, w), switch_at(l + 1, upper));
            }
        }
    }

    std::vector<int> rank(static_cast<std::size_t>(switch_count));
    for (int l = 0; l < n; ++l)
        for (int w = 0; w < switches_per_level; ++w)
            rank[static_cast<std::size_t>(switch_at(l, w).get())] = l;

    t.validate();
    return {std::move(t), std::move(rank)};
}

} // namespace noc
