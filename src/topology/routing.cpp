#include "topology/routing.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace noc {

namespace {

/// Append the hop that traverses `link`, on `vc`.
void push_link_hop(Route& r, const Topology& t, Link_id link,
                   std::uint16_t vc)
{
    r.push_back({t.output_port_of_link(link).get(), vc});
}

/// Append the final ejection hop into the destination core.
void push_eject_hop(Route& r, const Topology& t, Core_id dst)
{
    r.push_back({t.ejection_port_of_core(dst).get(), 0});
}

/// Shared scaffolding: run `route_switches(src_sw, dst_sw)` to get the link
/// and VC sequence for every core pair.
template<typename Fn>
Route_set build_all_pairs(const Topology& t, Fn&& route_between)
{
    Route_set set{t.core_count()};
    for (int s = 0; s < t.core_count(); ++s) {
        for (int d = 0; d < t.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            Route r = route_between(t.core_switch(src), t.core_switch(dst));
            push_eject_hop(r, t, dst);
            set.set(src, dst, std::move(r));
        }
    }
    return set;
}

} // namespace

Link_id find_link(const Topology& t, Switch_id from, Switch_id to)
{
    Link_id found = Link_id::invalid();
    for (const Link_id l : t.out_links(from)) {
        if (t.link(l).to == to) {
            if (found.is_valid())
                throw std::logic_error{"find_link: parallel links"};
            found = l;
        }
    }
    if (!found.is_valid()) throw std::logic_error{"find_link: no such link"};
    return found;
}

Route_set xy_routes(const Topology& t, const Mesh_params& p)
{
    auto coord = [&](Switch_id sw) {
        return std::pair<int, int>{static_cast<int>(sw.get()) % p.width,
                                   static_cast<int>(sw.get()) / p.width};
    };
    return build_all_pairs(t, [&](Switch_id s, Switch_id d) {
        Route r;
        auto [x, y] = coord(s);
        const auto [dx, dy] = coord(d);
        while (x != dx) {
            const int nx = x + (dx > x ? 1 : -1);
            push_link_hop(r, t,
                          find_link(t, mesh_switch_at(p, x, y),
                                    mesh_switch_at(p, nx, y)),
                          0);
            x = nx;
        }
        while (y != dy) {
            const int ny = y + (dy > y ? 1 : -1);
            push_link_hop(r, t,
                          find_link(t, mesh_switch_at(p, x, y),
                                    mesh_switch_at(p, x, ny)),
                          0);
            y = ny;
        }
        return r;
    });
}

Route_set torus_routes(const Topology& t, const Torus_params& p)
{
    if (p.width < 3 || p.height < 3)
        throw std::invalid_argument{
            "torus_routes: dimensions must be >= 3 (link ambiguity below)"};

    auto coord = [&](Switch_id sw) {
        return std::pair<int, int>{static_cast<int>(sw.get()) % p.width,
                                   static_cast<int>(sw.get()) / p.width};
    };

    // Walk one dimension from `from` to `to` (modular), crossing the wrap
    // link at most once; switch to vc 1 on the wrap hop and after it.
    auto walk_dim = [&](Route& r, int from, int to, int size, bool is_x,
                        int fixed) {
        if (from == to) return;
        const int fwd = (to - from + size) % size;
        const int bwd = (from - to + size) % size;
        const int dir = fwd <= bwd ? 1 : -1;
        int steps = std::min(fwd, bwd);
        std::uint16_t vc = 0;
        int cur = from;
        while (steps-- > 0) {
            const int nxt = (cur + dir + size) % size;
            const bool wrap = (dir == 1 && nxt < cur) ||
                              (dir == -1 && nxt > cur);
            if (wrap) vc = 1;
            const Switch_id a = is_x
                                    ? torus_switch_at(p, cur, fixed)
                                    : torus_switch_at(p, fixed, cur);
            const Switch_id b = is_x
                                    ? torus_switch_at(p, nxt, fixed)
                                    : torus_switch_at(p, fixed, nxt);
            push_link_hop(r, t, find_link(t, a, b), vc);
            cur = nxt;
        }
    };

    return build_all_pairs(t, [&](Switch_id s, Switch_id d) {
        Route r;
        const auto [sx, sy] = coord(s);
        const auto [dx, dy] = coord(d);
        walk_dim(r, sx, dx, p.width, true, sy);
        walk_dim(r, sy, dy, p.height, false, dx);
        return r;
    });
}

namespace {

/// Ring walk used by both ring and spidergon routing. Switch ids must be the
/// ring positions 0..size-1.
void ring_walk(Route& r, const Topology& t, int from, int to, int size)
{
    if (from == to) return;
    const int fwd = (to - from + size) % size;
    const int bwd = (from - to + size) % size;
    const int dir = fwd <= bwd ? 1 : -1;
    int steps = std::min(fwd, bwd);
    std::uint16_t vc = 0;
    int cur = from;
    while (steps-- > 0) {
        const int nxt = (cur + dir + size) % size;
        // Dateline: the wrap edge between positions size-1 and 0.
        if ((dir == 1 && nxt < cur) || (dir == -1 && nxt > cur)) vc = 1;
        push_link_hop(r, t,
                      find_link(t,
                                Switch_id{static_cast<std::uint32_t>(cur)},
                                Switch_id{static_cast<std::uint32_t>(nxt)}),
                      vc);
        cur = nxt;
    }
}

} // namespace

Route_set ring_routes(const Topology& t, const Ring_params& p)
{
    return build_all_pairs(t, [&](Switch_id s, Switch_id d) {
        Route r;
        ring_walk(r, t, static_cast<int>(s.get()),
                  static_cast<int>(d.get()), p.node_count);
        return r;
    });
}

Route_set spidergon_routes(const Topology& t, const Spidergon_params& p)
{
    const int n = p.node_count;
    return build_all_pairs(t, [&](Switch_id s, Switch_id d) {
        Route r;
        int cur = static_cast<int>(s.get());
        const int dst = static_cast<int>(d.get());
        const int fwd = (dst - cur + n) % n;
        const int bwd = (cur - dst + n) % n;
        if (std::min(fwd, bwd) > n / 4) {
            const int across = (cur + n / 2) % n;
            push_link_hop(
                r, t,
                find_link(t, Switch_id{static_cast<std::uint32_t>(cur)},
                          Switch_id{static_cast<std::uint32_t>(across)}),
                0);
            cur = across;
        }
        ring_walk(r, t, cur, dst, n);
        return r;
    });
}

Route_set updown_routes(const Topology& t,
                        const std::vector<int>& switch_rank)
{
    if (switch_rank.size() != static_cast<std::size_t>(t.switch_count()))
        throw std::invalid_argument{"updown_routes: rank size mismatch"};

    // A link u->v is "up" when (rank, id) increases strictly; the strict
    // total order makes the up orientation acyclic.
    auto is_up = [&](Switch_id u, Switch_id v) {
        return std::pair{switch_rank[v.get()], v.get()} >
               std::pair{switch_rank[u.get()], u.get()};
    };

    const int s_count = t.switch_count();

    // BFS over states (switch, phase): phase 0 = still ascending,
    // phase 1 = descending. Runs once per source switch.
    struct Parent {
        int state = -1;      // predecessor state index
        Link_id via{};       // link taken into this state
    };

    Route_set set{t.core_count()};
    for (int src_sw = 0; src_sw < s_count; ++src_sw) {
        std::vector<Parent> parent(static_cast<std::size_t>(2 * s_count));
        std::vector<char> seen(static_cast<std::size_t>(2 * s_count), 0);
        std::deque<int> queue;
        const int start = 2 * src_sw; // phase 0
        seen[static_cast<std::size_t>(start)] = 1;
        queue.push_back(start);

        while (!queue.empty()) {
            const int state = queue.front();
            queue.pop_front();
            const Switch_id u{static_cast<std::uint32_t>(state / 2)};
            const int phase = state % 2;
            for (const Link_id l : t.out_links(u)) {
                const Switch_id v = t.link(l).to;
                const bool up = is_up(u, v);
                if (phase == 1 && up) continue; // no down->up turns
                const int nstate = 2 * static_cast<int>(v.get()) +
                                   (up ? 0 : 1);
                if (seen[static_cast<std::size_t>(nstate)]) continue;
                seen[static_cast<std::size_t>(nstate)] = 1;
                parent[static_cast<std::size_t>(nstate)] = {state, l};
                queue.push_back(nstate);
            }
        }

        for (int c = 0; c < t.core_count(); ++c) {
            const Core_id dst{static_cast<std::uint32_t>(c)};
            const int dst_sw = static_cast<int>(t.core_switch(dst).get());
            if (dst_sw == src_sw) {
                // Local pair: route is just the ejection hop; fill for every
                // source core on this switch below.
                continue;
            }
            // Prefer arriving in descending phase; either is valid.
            int state = -1;
            if (seen[static_cast<std::size_t>(2 * dst_sw + 1)])
                state = 2 * dst_sw + 1;
            else if (seen[static_cast<std::size_t>(2 * dst_sw)])
                state = 2 * dst_sw;
            if (state < 0)
                throw std::logic_error{
                    "updown_routes: destination unreachable"};
            Route r;
            while (state != start) {
                const auto& pa = parent[static_cast<std::size_t>(state)];
                r.push_back({t.output_port_of_link(pa.via).get(), 0});
                state = pa.state;
            }
            std::reverse(r.begin(), r.end());

            for (const Core_id s_core : t.switch_cores(
                     Switch_id{static_cast<std::uint32_t>(src_sw)})) {
                Route full = r;
                push_eject_hop(full, t, dst);
                if (s_core != dst) set.set(s_core, dst, std::move(full));
            }
        }
        // Switch-local pairs.
        for (const Core_id a : t.switch_cores(
                 Switch_id{static_cast<std::uint32_t>(src_sw)})) {
            for (const Core_id b : t.switch_cores(
                     Switch_id{static_cast<std::uint32_t>(src_sw)})) {
                if (a == b) continue;
                Route r;
                push_eject_hop(r, t, b);
                set.set(a, b, std::move(r));
            }
        }
    }
    return set;
}

Route_set shortest_path_routes(const Topology& t)
{
    const int s_count = t.switch_count();
    Route_set set{t.core_count()};
    for (int src_sw = 0; src_sw < s_count; ++src_sw) {
        std::vector<Link_id> via(static_cast<std::size_t>(s_count));
        std::vector<int> prev(static_cast<std::size_t>(s_count), -1);
        std::vector<char> seen(static_cast<std::size_t>(s_count), 0);
        std::deque<int> queue;
        seen[static_cast<std::size_t>(src_sw)] = 1;
        queue.push_back(src_sw);
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (const Link_id l :
                 t.out_links(Switch_id{static_cast<std::uint32_t>(u)})) {
                const int v = static_cast<int>(t.link(l).to.get());
                if (seen[static_cast<std::size_t>(v)]) continue;
                seen[static_cast<std::size_t>(v)] = 1;
                prev[static_cast<std::size_t>(v)] = u;
                via[static_cast<std::size_t>(v)] = l;
                queue.push_back(v);
            }
        }
        for (const Core_id src : t.switch_cores(
                 Switch_id{static_cast<std::uint32_t>(src_sw)})) {
            for (int c = 0; c < t.core_count(); ++c) {
                const Core_id dst{static_cast<std::uint32_t>(c)};
                if (dst == src) continue;
                const int dst_sw =
                    static_cast<int>(t.core_switch(dst).get());
                if (!seen[static_cast<std::size_t>(dst_sw)])
                    throw std::logic_error{
                        "shortest_path_routes: unreachable"};
                Route r;
                for (int v = dst_sw; v != src_sw;
                     v = prev[static_cast<std::size_t>(v)])
                    r.push_back(
                        {t.output_port_of_link(via[static_cast<std::size_t>(v)])
                             .get(),
                         0});
                std::reverse(r.begin(), r.end());
                push_eject_hop(r, t, dst);
                set.set(src, dst, std::move(r));
            }
        }
    }
    return set;
}

std::vector<int> spanning_tree_ranks(const Topology& t, Switch_id root)
{
    std::vector<int> rank(static_cast<std::size_t>(t.switch_count()),
                          std::numeric_limits<int>::min());
    std::deque<Switch_id> queue;
    rank[root.get()] = 0;
    queue.push_back(root);
    while (!queue.empty()) {
        const Switch_id u = queue.front();
        queue.pop_front();
        for (const Link_id l : t.out_links(u)) {
            const Switch_id v = t.link(l).to;
            if (rank[v.get()] != std::numeric_limits<int>::min()) continue;
            rank[v.get()] = rank[u.get()] - 1; // deeper = lower rank
            queue.push_back(v);
        }
    }
    for (const int r : rank)
        if (r == std::numeric_limits<int>::min())
            throw std::logic_error{"spanning_tree_ranks: graph disconnected"};
    return rank;
}

std::vector<Switch_id> route_switch_path(const Topology& t, Core_id src,
                                         const Route& route)
{
    std::vector<Switch_id> path{t.core_switch(src)};
    for (const Hop& h : route) {
        const Link_id l =
            t.link_of_output_port(path.back(), Port_id{h.out_port});
        if (!l.is_valid()) break; // ejection hop
        path.push_back(t.link(l).to);
    }
    return path;
}

} // namespace noc
