// Topology description: the static structure of a NoC instance.
//
// A topology is a directed multigraph of switches plus an attachment of IP
// cores to switches. It is a pure description — the simulatable network is
// built from it by arch/noc_system.h, physical estimates by phys/, and
// synthesized instances by synth/.
//
// Port numbering convention (relied on by routing and the RTL generator):
//   switch s output ports: [0 .. ejection_count) eject to local cores in
//     ascending core-id order, then one port per outgoing link in ascending
//     link-id order;
//   switch s input ports: [0 .. injection_count) inject from local cores in
//     ascending core-id order, then one port per incoming link in ascending
//     link-id order.
#pragma once

#include "common/geometry.h"
#include "common/types.h"

#include <optional>
#include <string>
#include <vector>

namespace noc {

/// One unidirectional inter-switch link.
struct Topology_link {
    Switch_id from;
    Switch_id to;
    /// Extra pipeline stages on this link beyond the mandatory single
    /// register (wire retiming; see §4.1 "links can be explicitly
    /// segmented"). Total flit latency = 1 + pipeline_stages.
    int pipeline_stages = 0;
};

class Topology {
public:
    Topology(std::string name, int switch_count);

    /// Attach the next core (core ids are assigned densely in call order).
    Core_id attach_core(Switch_id sw);

    /// Add a unidirectional link; returns its id (dense, in call order).
    Link_id add_link(Switch_id from, Switch_id to, int pipeline_stages = 0);

    /// Add both directions with identical pipelining.
    void add_bidir_link(Switch_id a, Switch_id b, int pipeline_stages = 0);

    /// Optional placement of each switch (mm). Used by physical models.
    void set_switch_position(Switch_id sw, Point p);

    /// Retime a link after wire-length analysis (§4.1 link segmentation).
    void set_link_pipeline_stages(Link_id link, int stages);

    // --- structure queries -------------------------------------------------
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int switch_count() const
    {
        return static_cast<int>(out_links_.size());
    }
    [[nodiscard]] int core_count() const
    {
        return static_cast<int>(core_attach_.size());
    }
    [[nodiscard]] int link_count() const
    {
        return static_cast<int>(links_.size());
    }
    [[nodiscard]] const Topology_link& link(Link_id id) const
    {
        return links_[id.get()];
    }
    [[nodiscard]] const std::vector<Topology_link>& links() const
    {
        return links_;
    }
    [[nodiscard]] Switch_id core_switch(Core_id c) const
    {
        return core_attach_[c.get()];
    }
    /// Cores attached to `sw`, ascending.
    [[nodiscard]] const std::vector<Core_id>& switch_cores(Switch_id sw) const
    {
        return switch_cores_[sw.get()];
    }
    /// Outgoing / incoming link ids of `sw`, ascending.
    [[nodiscard]] const std::vector<Link_id>& out_links(Switch_id sw) const
    {
        return out_links_[sw.get()];
    }
    [[nodiscard]] const std::vector<Link_id>& in_links(Switch_id sw) const
    {
        return in_links_[sw.get()];
    }
    [[nodiscard]] std::optional<Point> switch_position(Switch_id sw) const;

    // --- port mapping (see header comment for the convention) --------------
    [[nodiscard]] int output_port_count(Switch_id sw) const;
    [[nodiscard]] int input_port_count(Switch_id sw) const;
    /// Output port on link.from that drives `link`.
    [[nodiscard]] Port_id output_port_of_link(Link_id link) const;
    /// Input port on link.to fed by `link`.
    [[nodiscard]] Port_id input_port_of_link(Link_id link) const;
    /// Ejection port on core_switch(c) towards core c.
    [[nodiscard]] Port_id ejection_port_of_core(Core_id c) const;
    /// Injection port on core_switch(c) from core c.
    [[nodiscard]] Port_id injection_port_of_core(Core_id c) const;
    /// Inverse of output_port_of_link; invalid id if `port` is an ejection
    /// port.
    [[nodiscard]] Link_id link_of_output_port(Switch_id sw,
                                              Port_id port) const;

    /// Maximum of input/output port counts over all switches (switch radix).
    [[nodiscard]] int max_radix() const;

    /// Throws std::logic_error when structurally inconsistent (dangling
    /// switch ids, unattached cores, self-loop links).
    void validate() const;

private:
    std::string name_;
    std::vector<Topology_link> links_;
    std::vector<Switch_id> core_attach_;            // core -> switch
    std::vector<std::vector<Core_id>> switch_cores_; // switch -> cores
    std::vector<std::vector<Link_id>> out_links_;    // switch -> links
    std::vector<std::vector<Link_id>> in_links_;
    std::vector<std::optional<Point>> positions_;
};

} // namespace noc
