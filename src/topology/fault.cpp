#include "topology/fault.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace noc {

Reroute_result reroute_around_failures(const Topology& t,
                                       const std::vector<int>& switch_rank,
                                       const std::set<Link_id>& failed)
{
    if (switch_rank.size() != static_cast<std::size_t>(t.switch_count()))
        throw std::invalid_argument{
            "reroute_around_failures: rank size mismatch"};
    for (const Link_id l : failed)
        if (l.get() >= static_cast<std::uint32_t>(t.link_count()))
            throw std::invalid_argument{
                "reroute_around_failures: bad failed link id"};

    auto is_up = [&](Switch_id u, Switch_id v) {
        return std::pair{switch_rank[v.get()], v.get()} >
               std::pair{switch_rank[u.get()], u.get()};
    };

    const int s_count = t.switch_count();
    Reroute_result out;
    out.routes = Route_set{t.core_count()};

    for (int src_sw = 0; src_sw < s_count; ++src_sw) {
        struct Parent {
            int state = -1;
            Link_id via{};
        };
        std::vector<Parent> parent(static_cast<std::size_t>(2 * s_count));
        std::vector<char> seen(static_cast<std::size_t>(2 * s_count), 0);
        std::deque<int> queue;
        const int start = 2 * src_sw;
        seen[static_cast<std::size_t>(start)] = 1;
        queue.push_back(start);
        while (!queue.empty()) {
            const int state = queue.front();
            queue.pop_front();
            const Switch_id u{static_cast<std::uint32_t>(state / 2)};
            const int phase = state % 2;
            for (const Link_id l : t.out_links(u)) {
                if (failed.count(l) != 0) continue;
                const Switch_id v = t.link(l).to;
                const bool up = is_up(u, v);
                if (phase == 1 && up) continue;
                const int nstate =
                    2 * static_cast<int>(v.get()) + (up ? 0 : 1);
                if (seen[static_cast<std::size_t>(nstate)]) continue;
                seen[static_cast<std::size_t>(nstate)] = 1;
                parent[static_cast<std::size_t>(nstate)] = {state, l};
                queue.push_back(nstate);
            }
        }

        for (const Core_id src : t.switch_cores(
                 Switch_id{static_cast<std::uint32_t>(src_sw)})) {
            for (int d = 0; d < t.core_count(); ++d) {
                const Core_id dst{static_cast<std::uint32_t>(d)};
                if (dst == src) continue;
                const int dst_sw =
                    static_cast<int>(t.core_switch(dst).get());
                if (dst_sw == src_sw) {
                    Route r;
                    r.push_back({t.ejection_port_of_core(dst).get(), 0});
                    out.routes.set(src, dst, std::move(r));
                    continue;
                }
                int state = -1;
                if (seen[static_cast<std::size_t>(2 * dst_sw + 1)])
                    state = 2 * dst_sw + 1;
                else if (seen[static_cast<std::size_t>(2 * dst_sw)])
                    state = 2 * dst_sw;
                if (state < 0) {
                    out.unreachable.emplace_back(src, dst);
                    continue;
                }
                Route r;
                while (state != start) {
                    const auto& pa =
                        parent[static_cast<std::size_t>(state)];
                    r.push_back({t.output_port_of_link(pa.via).get(), 0});
                    state = pa.state;
                }
                std::reverse(r.begin(), r.end());
                r.push_back({t.ejection_port_of_core(dst).get(), 0});
                out.routes.set(src, dst, std::move(r));
            }
        }
    }
    return out;
}

std::set<Link_id> symmetrize_failures(const Topology& t,
                                      const std::set<Link_id>& failed)
{
    std::set<Link_id> out = failed;
    for (const Link_id l : failed) {
        if (l.get() >= static_cast<std::uint32_t>(t.link_count()))
            throw std::invalid_argument{
                "symmetrize_failures: bad link id"};
        const auto& lk = t.link(l);
        for (const Link_id r : t.out_links(lk.to))
            if (t.link(r).to == lk.from) out.insert(r);
    }
    return out;
}

std::vector<int> failure_aware_ranks(const Topology& t,
                                     Switch_id preferred_root,
                                     const std::set<Link_id>& failed)
{
    const int s_count = t.switch_count();
    if (preferred_root.get() >= static_cast<std::uint32_t>(s_count))
        throw std::invalid_argument{"failure_aware_ranks: bad root"};
    std::vector<int> rank(static_cast<std::size_t>(s_count), 1);
    auto bfs_component = [&](Switch_id root) {
        std::deque<Switch_id> queue;
        rank[root.get()] = 0;
        queue.push_back(root);
        while (!queue.empty()) {
            const Switch_id u = queue.front();
            queue.pop_front();
            for (const Link_id l : t.out_links(u)) {
                if (failed.count(l) != 0) continue;
                const Switch_id v = t.link(l).to;
                if (rank[v.get()] <= 0) continue; // visited
                rank[v.get()] = rank[u.get()] - 1;
                queue.push_back(v);
            }
        }
    };
    // Preferred root's component first, then any component the failures cut
    // off, rooted at its lowest-id switch — the rank order only matters
    // within a component (routes never cross components).
    bfs_component(preferred_root);
    for (int s = 0; s < s_count; ++s)
        if (rank[static_cast<std::size_t>(s)] > 0)
            bfs_component(Switch_id{static_cast<std::uint32_t>(s)});
    return rank;
}

std::set<Link_id> links_used(const Topology& t, const Route_set& routes)
{
    std::set<Link_id> used;
    for (int s = 0; s < routes.core_count(); ++s) {
        for (int d = 0; d < routes.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Route& r = routes.at(src,
                                       Core_id{static_cast<std::uint32_t>(d)});
            if (r.empty()) continue;
            Switch_id sw = t.core_switch(src);
            for (const Hop& h : r) {
                const Link_id l =
                    t.link_of_output_port(sw, Port_id{h.out_port});
                if (!l.is_valid()) break;
                used.insert(l);
                sw = t.link(l).to;
            }
        }
    }
    return used;
}

} // namespace noc
