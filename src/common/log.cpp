#include "common/log.h"

#include <cstdio>

namespace noc {

namespace {
Log_level g_level = Log_level::warn;

const char* prefix(Log_level level)
{
    switch (level) {
    case Log_level::error: return "[error] ";
    case Log_level::warn: return "[warn ] ";
    case Log_level::info: return "[info ] ";
    case Log_level::debug: return "[debug] ";
    default: return "";
    }
}
} // namespace

void set_log_level(Log_level level)
{
    g_level = level;
}

Log_level log_level()
{
    return g_level;
}

void log_message(Log_level level, const std::string& text)
{
    if (static_cast<int>(level) > static_cast<int>(g_level)) return;
    std::fputs(prefix(level), stderr);
    std::fputs(text.c_str(), stderr);
    std::fputc('\n', stderr);
}

} // namespace noc
