// 2D geometry primitives for floorplanning and wire-length estimation.
// All dimensions are in millimetres unless stated otherwise.
#pragma once

#include <algorithm>
#include <cmath>

namespace noc {

struct Point {
    double x = 0.0;
    double y = 0.0;

    friend constexpr bool operator==(const Point&, const Point&) = default;
};

/// Manhattan distance — on-chip wires are routed rectilinearly, so this, not
/// Euclidean distance, is the wire-length estimate used everywhere.
[[nodiscard]] inline double manhattan(const Point& a, const Point& b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

[[nodiscard]] inline double euclidean(const Point& a, const Point& b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned rectangle, lower-left anchored.
struct Rect {
    double x = 0.0; ///< lower-left corner
    double y = 0.0;
    double w = 0.0; ///< width
    double h = 0.0; ///< height

    [[nodiscard]] double area() const { return w * h; }
    [[nodiscard]] Point center() const { return {x + w / 2, y + h / 2}; }
    [[nodiscard]] double right() const { return x + w; }
    [[nodiscard]] double top() const { return y + h; }

    [[nodiscard]] bool contains(const Point& p) const
    {
        return p.x >= x && p.x <= right() && p.y >= y && p.y <= top();
    }

    /// Strict interior overlap (shared edges do not count).
    [[nodiscard]] bool overlaps(const Rect& o) const
    {
        return x < o.right() && o.x < right() && y < o.top() && o.y < top();
    }

    /// Smallest rectangle containing both.
    [[nodiscard]] Rect union_with(const Rect& o) const
    {
        const double nx = std::min(x, o.x);
        const double ny = std::min(y, o.y);
        const double nr = std::max(right(), o.right());
        const double nt = std::max(top(), o.top());
        return {nx, ny, nr - nx, nt - ny};
    }

    friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

} // namespace noc
