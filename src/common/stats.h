// Statistics accumulators for simulation measurement.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace noc {

/// Streaming scalar accumulator: count / sum / min / max / mean / variance
/// (Welford). Used for packet latency, buffer occupancy, link utilization.
class Accumulator {
public:
    void add(double x);
    void clear();

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;
    [[nodiscard]] double std_dev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact accumulator for integer-valued samples (cycle latencies). All
/// internal state is integral, so accumulation — and merging partial
/// accumulators — is associative and commutative with NO floating-point
/// order sensitivity: the sharded kernel's per-shard stats merged in any
/// order are bit-identical to the sequential kernel's single stream. The
/// query surface mirrors Accumulator (mean/min/max/std_dev as doubles).
class Exact_stat {
public:
    void add(std::uint64_t x)
    {
        ++count_;
        sum_ += x;
        sum_sq_ += x * x;
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }

    void merge(const Exact_stat& o)
    {
        count_ += o.count_;
        sum_ += o.sum_;
        sum_sq_ += o.sum_sq_;
        if (o.min_ < min_) min_ = o.min_;
        if (o.max_ > max_) max_ = o.max_;
    }

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return static_cast<double>(sum_); }
    [[nodiscard]] double mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }
    /// Sample variance from exact integer moments (matches Accumulator's
    /// count-1 convention).
    [[nodiscard]] double variance() const;
    [[nodiscard]] double std_dev() const;
    // Empty accumulators report 0 like Accumulator, for drop-in use.
    [[nodiscard]] double min() const
    {
        return count_ == 0 ? 0.0 : static_cast<double>(min_);
    }
    [[nodiscard]] double max() const
    {
        return count_ == 0 ? 0.0 : static_cast<double>(max_);
    }

private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t sum_sq_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/// Fixed-bin histogram over [0, bin_width * bin_count); overflow values land
/// in the last bin. Supports exact percentile queries over the binned data.
class Histogram {
public:
    Histogram(double bin_width, std::size_t bin_count);

    void add(double x);
    void clear();

    [[nodiscard]] std::uint64_t count() const { return total_; }
    [[nodiscard]] const std::vector<std::uint64_t>& bins() const
    {
        return bins_;
    }
    [[nodiscard]] double bin_width() const { return bin_width_; }

    /// Value below which `fraction` of samples fall (upper edge of the bin
    /// that crosses the fraction). fraction in [0, 1].
    [[nodiscard]] double percentile(double fraction) const;

private:
    double bin_width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

} // namespace noc
