// Statistics accumulators for simulation measurement.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace noc {

/// Streaming scalar accumulator: count / sum / min / max / mean / variance
/// (Welford). Used for packet latency, buffer occupancy, link utilization.
class Accumulator {
public:
    void add(double x);
    void clear();

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;
    [[nodiscard]] double std_dev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [0, bin_width * bin_count); overflow values land
/// in the last bin. Supports exact percentile queries over the binned data.
class Histogram {
public:
    Histogram(double bin_width, std::size_t bin_count);

    void add(double x);
    void clear();

    [[nodiscard]] std::uint64_t count() const { return total_; }
    [[nodiscard]] const std::vector<std::uint64_t>& bins() const
    {
        return bins_;
    }
    [[nodiscard]] double bin_width() const { return bin_width_; }

    /// Value below which `fraction` of samples fall (upper edge of the bin
    /// that crosses the fraction). fraction in [0, 1].
    [[nodiscard]] double percentile(double fraction) const;

private:
    double bin_width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

} // namespace noc
