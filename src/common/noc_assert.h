// Debug-only invariant checks for simulation hot paths.
//
// The seed code guarded every FIFO push/pop/front with an always-on throw.
// Those guards catch wiring bugs (a flow-control violation IS a bug, not an
// input error), but they sit on the innermost loops of Router::step and cost
// real throughput at saturation. NOC_ASSERT keeps them as assertions that
// compile to nothing unless NOC_DEBUG is defined (or the build is a plain
// debug build without NDEBUG), so correctness work runs fully checked while
// benchmark/CI release builds pay zero.
//
// Checks that validate *external* input (route tables, user parameters) or
// that a test deliberately provokes (the ON/OFF margin-violation guard in
// Router::deliver_arrival) stay as always-on throws — only per-flit hot-path
// checks use NOC_ASSERT.
#pragma once

#if !defined(NOC_DEBUG) && !defined(NDEBUG)
#define NOC_DEBUG 1
#endif

#ifdef NOC_DEBUG

#include <stdexcept>

#define NOC_ASSERT(cond, msg)                                                  \
    do {                                                                       \
        if (!(cond)) throw std::logic_error{msg};                              \
    } while (false)

#else

#define NOC_ASSERT(cond, msg)                                                  \
    do {                                                                       \
    } while (false)

#endif
