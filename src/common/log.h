// Minimal leveled logger.
//
// Simulation and synthesis both want progress/diagnostic output that can be
// silenced in tests and benches. A single global level keeps call sites
// trivial; there is deliberately no per-module registry.
#pragma once

#include <string>

namespace noc {

enum class Log_level { off, error, warn, info, debug };

/// Process-wide log threshold (default: warn). Tests set `off`.
void set_log_level(Log_level level);
[[nodiscard]] Log_level log_level();

void log_message(Log_level level, const std::string& text);

inline void log_error(const std::string& text)
{
    log_message(Log_level::error, text);
}
inline void log_warn(const std::string& text)
{
    log_message(Log_level::warn, text);
}
inline void log_info(const std::string& text)
{
    log_message(Log_level::info, text);
}
inline void log_debug(const std::string& text)
{
    log_message(Log_level::debug, text);
}

} // namespace noc
