// Deterministic pseudo-random number generation.
//
// Benches and tests must be bit-reproducible across runs and platforms, so we
// avoid std::default_random_engine (implementation-defined) and the
// distribution objects (algorithm unspecified). xoshiro256** seeded through
// SplitMix64 gives high-quality, portable streams.
#pragma once

#include <cstdint>
#include <cmath>

namespace noc {

/// xoshiro256** generator with SplitMix64 seeding. Header-only and cheap to
/// copy; every stochastic component owns its own stream so that adding a
/// component never perturbs another component's draws.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /// Uniform 64-bit word.
    std::uint64_t next_u64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound == 0 returns 0.
    ///
    /// Lemire's nearly-divisionless bounded draw ("Fast Random Integer
    /// Generation in an Interval", ACM TOMACS 2019): take the high word of a
    /// 64x64 widening multiply, rejecting only the (probability bound/2^64)
    /// low-word slice that would bias the result — the expensive `%` runs
    /// once per rejection, not per draw. Exactly uniform, unlike the old
    /// modulo reduction. Note this changes the value stream relative to the
    /// pre-Lemire implementation (same u64 consumption outside the
    /// vanishingly rare rejection path); the pinned-stream test in
    /// tests/common/test_rng.cpp freezes the new stream.
    std::uint64_t next_below(std::uint64_t bound)
    {
        if (bound == 0) return 0;
        unsigned __int128 m =
            static_cast<unsigned __int128>(next_u64()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound; // 2^64 % bound
            while (lo < threshold) {
                m = static_cast<unsigned __int128>(next_u64()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform double in [0, 1).
    double next_double()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli draw with probability p.
    bool next_bool(double p) { return next_double() < p; }

    /// Geometric draw: number of failures before first success, success
    /// probability p in (0, 1].
    std::uint64_t next_geometric(double p)
    {
        if (p >= 1.0) return 0;
        const double u = next_double();
        return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

} // namespace noc
