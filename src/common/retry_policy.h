// Retry_policy — the one retry/backoff vocabulary shared by every layer
// that re-executes failed work: Sweep_runner re-runs a grid point whose
// attempt threw (in-process, same thread), and the farm orchestrator
// (farm/orchestrator.h) re-dispatches a slice whose worker process died,
// hung, or tore its output file. Both layers absorb only *environmental*
// failures — the inputs are deterministic, so a retried success is
// byte-identical to a first-try success and the policy never shows up in
// serialized results.
#pragma once

#include <cstdint>

namespace noc {

struct Retry_policy {
    /// Total execution attempts allowed per unit of work (>= 1). 1 means
    /// no retry at all; the historical Sweep_runner behavior is 2
    /// ("retry once").
    std::uint32_t max_attempts = 2;

    /// Delay before the first retry, in milliseconds. 0 disables backoff
    /// (retry immediately) — the right call for in-process retries where
    /// the failure mode is allocation pressure from sibling workers, and
    /// the wrong one for process farms where a crashing node needs time.
    std::uint32_t backoff_ms = 0;

    /// Exponential growth factor applied per additional failure.
    double multiplier = 2.0;

    /// Ceiling on any single delay, so a long attempt budget cannot
    /// produce hour-long sleeps.
    std::uint32_t cap_ms = 60'000;

    /// Delay to wait after `failures` consecutive failed attempts
    /// (failures >= 1): backoff_ms * multiplier^(failures-1), capped.
    [[nodiscard]] std::uint32_t delay_ms(std::uint32_t failures) const
    {
        if (backoff_ms == 0 || failures == 0) return 0;
        double d = backoff_ms;
        for (std::uint32_t i = 1; i < failures; ++i) {
            d *= multiplier;
            if (d >= cap_ms) return cap_ms;
        }
        return d >= cap_ms ? cap_ms : static_cast<std::uint32_t>(d);
    }

    /// True when `attempts_so_far` used the whole budget.
    [[nodiscard]] bool exhausted(std::uint32_t attempts_so_far) const
    {
        return attempts_so_far >= max_attempts;
    }
};

} // namespace noc
