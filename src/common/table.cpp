#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace noc {

std::string format_double(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

Text_table::Text_table(std::vector<std::string> headers)
    : headers_{std::move(headers)}
{
    if (headers_.empty())
        throw std::invalid_argument{"Text_table: no headers"};
}

Text_table& Text_table::row()
{
    rows_.emplace_back();
    return *this;
}

Text_table& Text_table::add(std::string cell)
{
    if (rows_.empty())
        throw std::logic_error{"Text_table: add before row()"};
    if (rows_.back().size() >= headers_.size())
        throw std::logic_error{"Text_table: too many cells in row"};
    rows_.back().push_back(std::move(cell));
    return *this;
}

Text_table& Text_table::add(double value, int precision)
{
    return add(format_double(value, precision));
}

Text_table& Text_table::add(std::uint64_t value)
{
    return add(std::to_string(value));
}

Text_table& Text_table::add(int value)
{
    return add(std::to_string(value));
}

void Text_table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : "";
            os << cell;
            if (c + 1 < headers_.size())
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& r : rows_) emit_row(r);
}

void Text_table::print_csv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
}

} // namespace noc
