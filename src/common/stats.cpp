#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace noc {

void Accumulator::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void Accumulator::clear()
{
    *this = Accumulator{};
}

double Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double Accumulator::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::std_dev() const
{
    return std::sqrt(variance());
}

double Accumulator::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double Accumulator::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double Exact_stat::variance() const
{
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    const double s = static_cast<double>(sum_);
    const double ss = static_cast<double>(sum_sq_);
    const double num = ss - s * s / n;
    return num <= 0.0 ? 0.0 : num / (n - 1.0);
}

double Exact_stat::std_dev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bin_width, std::size_t bin_count)
    : bin_width_{bin_width}, bins_(bin_count, 0)
{
    if (bin_width <= 0.0 || bin_count == 0)
        throw std::invalid_argument{"Histogram: bad geometry"};
}

void Histogram::add(double x)
{
    auto idx = static_cast<std::size_t>(std::max(0.0, x) / bin_width_);
    idx = std::min(idx, bins_.size() - 1);
    ++bins_[idx];
    ++total_;
}

void Histogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    total_ = 0;
}

double Histogram::percentile(double fraction) const
{
    if (total_ == 0) return 0.0;
    const double target = fraction * static_cast<double>(total_);
    double running = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        running += static_cast<double>(bins_[i]);
        if (running >= target)
            return static_cast<double>(i + 1) * bin_width_;
    }
    return static_cast<double>(bins_.size()) * bin_width_;
}

} // namespace noc
