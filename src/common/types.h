// Fundamental scalar types and strong identifiers used across the library.
//
// A NoC model juggles many small integer id spaces (cores, switches, ports,
// virtual channels, flows, packets). Mixing them up is the classic source of
// silent bugs in interconnect simulators, so each id space gets a distinct
// strong type. The wrapper is zero-cost: a single integral member.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace noc {

/// Simulation time in clock cycles of the NoC clock domain.
using Cycle = std::uint64_t;

/// Sentinel for "no cycle recorded yet".
inline constexpr Cycle invalid_cycle = std::numeric_limits<Cycle>::max();

namespace detail {

/// CRTP-free strong id: `Tag` makes each instantiation a distinct type.
template<typename Tag, typename Rep = std::uint32_t>
struct Strong_id {
    using rep_type = Rep;

    Rep value{invalid_value()};

    constexpr Strong_id() = default;
    constexpr explicit Strong_id(Rep v) : value{v} {}

    [[nodiscard]] static constexpr Rep invalid_value()
    {
        return std::numeric_limits<Rep>::max();
    }
    [[nodiscard]] static constexpr Strong_id invalid() { return Strong_id{}; }

    [[nodiscard]] constexpr bool is_valid() const
    {
        return value != invalid_value();
    }
    [[nodiscard]] constexpr Rep get() const { return value; }

    friend constexpr bool operator==(Strong_id, Strong_id) = default;
    friend constexpr auto operator<=>(Strong_id, Strong_id) = default;
};

} // namespace detail

struct Core_tag {};
struct Switch_tag {};
struct Node_tag {};
struct Port_tag {};
struct Vc_tag {};
struct Flow_tag {};
struct Packet_tag {};
struct Link_tag {};
struct Connection_tag {};
struct Layer_tag {};
struct Dset_tag {};

/// An IP core (processing element, memory, accelerator) attached to the NoC.
using Core_id = detail::Strong_id<Core_tag>;
/// A switch (router) in the network.
using Switch_id = detail::Strong_id<Switch_tag>;
/// A generic topology node (switch or network-interface endpoint).
using Node_id = detail::Strong_id<Node_tag>;
/// A port index local to one switch.
using Port_id = detail::Strong_id<Port_tag, std::uint16_t>;
/// A virtual channel index local to one port.
using Vc_id = detail::Strong_id<Vc_tag, std::uint16_t>;
/// One logical traffic flow (source core -> destination core stream).
using Flow_id = detail::Strong_id<Flow_tag>;
/// One packet instance, unique within a simulation run.
using Packet_id = detail::Strong_id<Packet_tag, std::uint64_t>;
/// A unidirectional link in the topology.
using Link_id = detail::Strong_id<Link_tag>;
/// A guaranteed-throughput (GT) connection in the QoS layer.
using Connection_id = detail::Strong_id<Connection_tag>;
/// A silicon layer in a 3D-stacked design (0 = bottom die).
using Layer_id = detail::Strong_id<Layer_tag, std::uint16_t>;
/// A multicast destination set (topology/multicast.h): one id names one
/// ordered set of destination cores shared by every packet of a collective.
using Dset_id = detail::Strong_id<Dset_tag>;

} // namespace noc

namespace std {

template<typename Tag, typename Rep>
struct hash<noc::detail::Strong_id<Tag, Rep>> {
    size_t operator()(noc::detail::Strong_id<Tag, Rep> id) const noexcept
    {
        return std::hash<Rep>{}(id.value);
    }
};

} // namespace std
