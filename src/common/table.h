// Text-table / CSV emitter used by benches to print the rows and series that
// correspond to the paper's figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace noc {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision so bench output is stable run-to-run.
class Text_table {
public:
    explicit Text_table(std::vector<std::string> headers);

    /// Begin a new row; subsequent `add*` calls fill it left to right.
    Text_table& row();
    Text_table& add(std::string cell);
    Text_table& add(double value, int precision = 2);
    Text_table& add(std::uint64_t value);
    Text_table& add(int value);

    /// Render with padded columns; optionally also as CSV.
    void print(std::ostream& os) const;
    void print_csv(std::ostream& os) const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
    [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const
    {
        return rows_;
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (locale-independent).
[[nodiscard]] std::string format_double(double value, int precision = 2);

} // namespace noc
