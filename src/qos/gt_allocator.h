// Æthereal-style guaranteed-throughput admission (§3).
//
// "It uses a Time Division Multiple Access mechanism to divide time in
// multiple time slots, and then assigns each GT connection a number of
// slots. The result is a slot-table in each NI, stating which GT connection
// is allowed to enter the network at which time-slot."
//
// Contention-free schedule: a flit injected in slot s crosses the k-th link
// of its path during slot (s + k * hop_delay) mod S (the pipeline is
// deterministic because GT flits always win arbitration and never queue).
// Admission therefore reduces to finding, per connection, enough slots s
// such that every (link, s + k * hop_delay) resource is free. Combined with
// the router's strict GT priority this yields hard bandwidth and latency
// guarantees, independent of best-effort load — verified empirically in the
// QoS tests and the C2 bench.
#pragma once

#include "common/types.h"
#include "topology/graph.h"
#include "topology/route.h"

#include <string>
#include <vector>

namespace noc {

struct Gt_request {
    Connection_id conn;
    Core_id src;
    Core_id dst;
    /// Required bandwidth as a fraction of link capacity (flits/cycle).
    double bandwidth_flits_per_cycle = 0.0;
};

struct Gt_connection_grant {
    Connection_id conn;
    Core_id src;
    Core_id dst;
    std::vector<int> slots; ///< injection slots owned in the NI table
    int path_hops = 0;      ///< inter-switch links traversed
    /// Hard per-flit latency bound in cycles (slot wait + pipeline).
    Cycle latency_bound = 0;
    double granted_bandwidth = 0.0; ///< slots / table_length
};

struct Gt_allocation {
    bool feasible = false;
    std::string failure_reason;
    int slot_table_length = 0;
    std::vector<Gt_connection_grant> grants;
    /// Per-core NI slot table (what Ni::set_slot_table takes).
    std::vector<std::vector<Connection_id>> ni_tables;
};

class Gt_allocator {
public:
    /// `hop_delay` is the per-hop pipeline of the router (2 cycles for the
    /// single-cycle-link router in arch/).
    Gt_allocator(const Topology& topology, const Route_set& routes,
                 int slot_table_length, int hop_delay = 2);

    /// Greedy admission in request order. All requests must be admitted for
    /// `feasible`; on failure `failure_reason` names the rejected request.
    [[nodiscard]] Gt_allocation allocate(
        const std::vector<Gt_request>& requests) const;

    /// Independent re-check of an allocation: no (link, slot) is claimed by
    /// two connections. Used by tests and after deserialization.
    [[nodiscard]] bool verify(const Gt_allocation& allocation) const;

private:
    [[nodiscard]] std::vector<Link_id> path_links(Core_id src,
                                                  Core_id dst) const;

    const Topology* topology_;
    const Route_set* routes_;
    int table_length_;
    int hop_delay_;
};

} // namespace noc
