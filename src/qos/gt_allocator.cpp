#include "qos/gt_allocator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace noc {

Gt_allocator::Gt_allocator(const Topology& topology, const Route_set& routes,
                           int slot_table_length, int hop_delay)
    : topology_{&topology},
      routes_{&routes},
      table_length_{slot_table_length},
      hop_delay_{hop_delay}
{
    if (slot_table_length < 2)
        throw std::invalid_argument{"Gt_allocator: slot table too short"};
    if (hop_delay < 1)
        throw std::invalid_argument{"Gt_allocator: hop_delay < 1"};
}

std::vector<Link_id> Gt_allocator::path_links(Core_id src, Core_id dst) const
{
    std::vector<Link_id> links;
    Switch_id sw = topology_->core_switch(src);
    for (const Hop& h : routes_->at(src, dst)) {
        const Link_id l =
            topology_->link_of_output_port(sw, Port_id{h.out_port});
        if (!l.is_valid()) break; // ejection
        links.push_back(l);
        sw = topology_->link(l).to;
    }
    return links;
}

Gt_allocation Gt_allocator::allocate(
    const std::vector<Gt_request>& requests) const
{
    Gt_allocation out;
    out.slot_table_length = table_length_;
    out.ni_tables.assign(
        static_cast<std::size_t>(topology_->core_count()),
        std::vector<Connection_id>(static_cast<std::size_t>(table_length_)));

    // occupancy[(link, slot)] -> connection.
    std::map<std::pair<std::uint32_t, int>, Connection_id> occupancy;

    for (const auto& req : requests) {
        if (req.bandwidth_flits_per_cycle <= 0.0 ||
            req.bandwidth_flits_per_cycle > 1.0) {
            out.failure_reason = "connection " +
                                 std::to_string(req.conn.get()) +
                                 ": bandwidth outside (0, 1]";
            return out;
        }
        const auto links = path_links(req.src, req.dst);
        const int slots_needed = static_cast<int>(std::ceil(
            req.bandwidth_flits_per_cycle * table_length_));

        auto& ni_table = out.ni_tables[req.src.get()];
        std::vector<int> granted;
        for (int s = 0; s < table_length_ && static_cast<int>(granted.size()) <
                                                 slots_needed;
             ++s) {
            if (ni_table[static_cast<std::size_t>(s)].is_valid())
                continue; // injection slot already owned by another conn
            bool free = true;
            for (std::size_t k = 0; k < links.size(); ++k) {
                const int slot =
                    (s + static_cast<int>(k + 1) * hop_delay_) %
                    table_length_;
                if (occupancy.count({links[k].get(), slot}) != 0) {
                    free = false;
                    break;
                }
            }
            if (free) granted.push_back(s);
        }
        if (static_cast<int>(granted.size()) < slots_needed) {
            out.failure_reason =
                "connection " + std::to_string(req.conn.get()) + " (" +
                std::to_string(req.src.get()) + "->" +
                std::to_string(req.dst.get()) + "): only " +
                std::to_string(granted.size()) + "/" +
                std::to_string(slots_needed) + " slots available";
            return out;
        }

        for (const int s : granted) {
            ni_table[static_cast<std::size_t>(s)] = req.conn;
            for (std::size_t k = 0; k < links.size(); ++k) {
                const int slot =
                    (s + static_cast<int>(k + 1) * hop_delay_) %
                    table_length_;
                occupancy[{links[k].get(), slot}] = req.conn;
            }
        }

        Gt_connection_grant grant;
        grant.conn = req.conn;
        grant.src = req.src;
        grant.dst = req.dst;
        grant.slots = granted;
        grant.path_hops = static_cast<int>(links.size());
        grant.granted_bandwidth =
            static_cast<double>(granted.size()) / table_length_;
        // Worst-case flit latency: longest wait for an owned slot, plus the
        // deterministic pipeline: hop_delay per router traversal (the
        // injection link + each inter-switch link) plus the final ejection
        // channel cycle.
        int worst_wait = 0;
        std::vector<int> sorted = granted;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            const int next = sorted[(i + 1) % sorted.size()];
            const int gap =
                (next - sorted[i] + table_length_ - 1 + table_length_) %
                    table_length_ +
                1;
            worst_wait = std::max(worst_wait, gap);
        }
        grant.latency_bound =
            static_cast<Cycle>(worst_wait) +
            static_cast<Cycle>((links.size() + 1) * hop_delay_) + 1;
        out.grants.push_back(std::move(grant));
    }
    out.feasible = true;
    return out;
}

bool Gt_allocator::verify(const Gt_allocation& allocation) const
{
    std::map<std::pair<std::uint32_t, int>, Connection_id> occupancy;
    for (const auto& g : allocation.grants) {
        const auto links = path_links(g.src, g.dst);
        for (const int s : g.slots) {
            for (std::size_t k = 0; k < links.size(); ++k) {
                const int slot =
                    (s + static_cast<int>(k + 1) * hop_delay_) %
                    allocation.slot_table_length;
                const auto key = std::pair{links[k].get(), slot};
                const auto [it, inserted] = occupancy.emplace(key, g.conn);
                if (!inserted && it->second != g.conn) return false;
            }
        }
    }
    // NI tables must agree with the grants.
    for (const auto& g : allocation.grants) {
        const auto& table = allocation.ni_tables[g.src.get()];
        for (const int s : g.slots)
            if (table[static_cast<std::size_t>(s)] != g.conn) return false;
    }
    return true;
}

} // namespace noc
