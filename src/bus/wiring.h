// Wire-count accounting for bus vs. NoC links (§4.1).
//
// "A typical on-chip bus requires around 100 to 200 wires: 32 or 64 bits of
// write data, 32 or 64 bits of read data, 32 bits of address, plus control
// signals. On the other hand, a NoC sends packets ... it does not, in
// principle, have constraints over how many wires need to be deployed in
// parallel."
#pragma once

#include "phys/technology.h"

namespace noc {

struct Bus_wiring {
    int write_data_bits = 32;
    int read_data_bits = 32;
    int address_bits = 32;
    int control_bits = 20; ///< ready/valid/burst/prot/etc.
    [[nodiscard]] int total_wires() const
    {
        return write_data_bits + read_data_bits + address_bits +
               control_bits;
    }
};

struct Noc_link_wiring {
    int flit_width_bits = 32;
    int flow_control_wires = 4; ///< credits / stall-go / ack-nack return
    int has_valid_wire = 1;
    [[nodiscard]] int total_wires() const
    {
        return flit_width_bits + flow_control_wires + has_valid_wire;
    }
};

struct Wiring_comparison {
    int bus_wires = 0;
    int noc_wires = 0;
    double wire_reduction_factor = 0.0; ///< bus / noc
    double bus_area_mm2_per_mm = 0.0;   ///< routing area per mm of run
    double noc_area_mm2_per_mm = 0.0;
    /// Serialization penalty: cycles to move one 32-bit-word transaction
    /// payload over the narrower NoC link.
    double noc_cycles_per_bus_beat = 0.0;
};

/// Compare one bus run against one NoC link of the given flit width.
[[nodiscard]] Wiring_comparison compare_wiring(const Technology& tech,
                                               const Bus_wiring& bus,
                                               const Noc_link_wiring& link);

/// Crosstalk proxy: aggressor-coupling per mm grows with parallel wires
/// (adjacent-pair count); used by the wiring bench.
[[nodiscard]] double coupling_pairs_per_mm(const Technology& tech,
                                           int wires);

} // namespace noc
