// Cycle-level shared-bus and bridged-bus models — the §1 baseline ("for a
// long while, bus-based solutions have been widely used... as the number of
// components scales up, the complexity of the bus system also increases").
//
// The shared bus serializes every transfer through one arbiter; the bridged
// variant splits masters/slaves over segments joined by a store-and-forward
// bridge (the "several levels of bus hierarchy" of evolved SoC buses).
#pragma once

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace noc {

struct Bus_params {
    int masters = 4;
    /// Bus data width in bits (buses move whole words in parallel; §4.1
    /// puts a typical bus at 100-200 wires).
    int width_bits = 32;
    /// Arbitration + address phase cost per transaction, cycles.
    int arbitration_cycles = 1;
    double clock_ghz = 1.0;
};

struct Bus_load_point {
    double offered_words_per_cycle = 0.0;
    double accepted_words_per_cycle = 0.0;
    double avg_latency = 0.0;
    double max_latency = 0.0;
    std::uint64_t transfers = 0;
};

/// Simulate Bernoulli masters posting `burst_words`-long transfers at
/// `rate` transfers/master/cycle for `cycles`. Round-robin arbitration.
[[nodiscard]] Bus_load_point simulate_shared_bus(const Bus_params& p,
                                                 double rate,
                                                 int burst_words,
                                                 Cycle cycles,
                                                 std::uint64_t seed = 1);

struct Bridged_bus_params {
    Bus_params segment; ///< both segments share this configuration
    /// Fraction of each master's traffic that crosses the bridge.
    double cross_fraction = 0.5;
    /// Store-and-forward latency of the bridge, cycles.
    int bridge_latency = 4;
    /// Bridge queue depth (transactions).
    int bridge_queue = 8;
};

/// Two-segment bridged bus with half the masters on each side.
[[nodiscard]] Bus_load_point simulate_bridged_bus(const Bridged_bus_params& p,
                                                  double rate,
                                                  int burst_words,
                                                  Cycle cycles,
                                                  std::uint64_t seed = 1);

} // namespace noc
