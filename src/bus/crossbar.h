// Multilayer-AHB-style crossbar model (§4.2 "Routability").
//
// "Crossbars are successful at providing non-blocking access and minimizing
// arbitration delays. Unfortunately, if the inputs and outputs of the
// crossbars are 100- to 200-wires wide as in buses, crossbars may exhibit
// serious physical wire routability issues. Due to this, commercial tools
// often constrain the maximum crossbar size to 8x8 or less."
//
// Two pieces: a cycle-level performance model (per-slave round-robin
// arbitration, non-blocking across distinct slaves) and a physical
// routability estimate that reuses the router wiring model with bus-width
// ports — which is exactly what makes big bus crossbars unroutable while
// 32-bit NoC switches of radix 10+ are fine.
#pragma once

#include "bus/shared_bus.h"
#include "phys/router_model.h"

namespace noc {

struct Crossbar_params {
    int masters = 4;
    int slaves = 4;
    int width_bits = 128; ///< full bus port width (data+addr+control)
    int arbitration_cycles = 1;
};

/// Uniform-random master->slave transfers; per-slave round-robin.
[[nodiscard]] Bus_load_point simulate_crossbar(const Crossbar_params& p,
                                               double rate, int burst_words,
                                               Cycle cycles,
                                               std::uint64_t seed = 1);

/// Physical feasibility of the crossbar macro: the router wiring model at
/// bus-class port widths (no per-port buffering — crossbars are
/// combinational plus output registers).
[[nodiscard]] Router_phys_result estimate_crossbar_phys(
    const Technology& tech, const Crossbar_params& p);

} // namespace noc
