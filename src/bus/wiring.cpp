#include "bus/wiring.h"

#include <stdexcept>

namespace noc {

Wiring_comparison compare_wiring(const Technology& tech,
                                 const Bus_wiring& bus,
                                 const Noc_link_wiring& link)
{
    if (link.flit_width_bits <= 0)
        throw std::invalid_argument{"compare_wiring: bad flit width"};

    Wiring_comparison c;
    c.bus_wires = bus.total_wires();
    c.noc_wires = link.total_wires();
    c.wire_reduction_factor =
        static_cast<double>(c.bus_wires) / c.noc_wires;
    const double pitch_mm = tech.metal_pitch_um * 1e-3;
    c.bus_area_mm2_per_mm = c.bus_wires * pitch_mm;
    c.noc_area_mm2_per_mm = c.noc_wires * pitch_mm;
    // One bus beat moves read+write data in parallel; the NoC serializes
    // the same payload bits over flit_width wires.
    const double payload_bits = bus.write_data_bits + bus.read_data_bits;
    c.noc_cycles_per_bus_beat = payload_bits / link.flit_width_bits;
    return c;
}

double coupling_pairs_per_mm(const Technology& tech, int wires)
{
    if (wires < 0)
        throw std::invalid_argument{"coupling_pairs_per_mm: negative"};
    // Adjacent-pair coupling events per mm of parallel run: each internal
    // neighbour pair couples once per pitch-length segment.
    const double segments_per_mm = 1.0 / (tech.metal_pitch_um * 1e-3);
    return wires <= 1 ? 0.0 : (wires - 1) * segments_per_mm;
}

} // namespace noc
