#include "bus/crossbar.h"

#include <stdexcept>

namespace noc {

Bus_load_point simulate_crossbar(const Crossbar_params& p, double rate,
                                 int burst_words, Cycle cycles,
                                 std::uint64_t seed)
{
    if (p.masters < 1 || p.slaves < 1 || burst_words < 1)
        throw std::invalid_argument{"simulate_crossbar: bad parameters"};

    struct Pending {
        Cycle born;
        int words;
        int slave;
    };
    std::vector<std::deque<Pending>> queues(
        static_cast<std::size_t>(p.masters));
    std::vector<Rng> rngs;
    for (int m = 0; m < p.masters; ++m)
        rngs.emplace_back(seed * 13 + static_cast<std::uint64_t>(m));

    // Per-slave data-phase state.
    struct Slave {
        int busy_words = 0;
        int master = -1;
        Cycle born = 0;
        int rr = 0;
    };
    std::vector<Slave> slaves(static_cast<std::size_t>(p.slaves));

    Accumulator latency;
    std::uint64_t transfers = 0;
    std::uint64_t words_done = 0;

    for (Cycle t = 0; t < cycles; ++t) {
        for (int m = 0; m < p.masters; ++m)
            if (rngs[static_cast<std::size_t>(m)].next_bool(rate))
                queues[static_cast<std::size_t>(m)].push_back(
                    {t, burst_words,
                     static_cast<int>(rngs[static_cast<std::size_t>(m)]
                                          .next_below(static_cast<std::uint64_t>(
                                              p.slaves)))});

        // A master drives at most one slave per cycle; track who is busy.
        std::vector<bool> master_busy(static_cast<std::size_t>(p.masters));
        for (auto& s : slaves)
            if (s.busy_words > 0)
                master_busy[static_cast<std::size_t>(s.master)] = true;

        for (int si = 0; si < p.slaves; ++si) {
            Slave& s = slaves[static_cast<std::size_t>(si)];
            if (s.busy_words > 0) {
                --s.busy_words;
                ++words_done;
                if (s.busy_words == 0) {
                    latency.add(static_cast<double>(t - s.born + 1));
                    ++transfers;
                    queues[static_cast<std::size_t>(s.master)].pop_front();
                }
                continue;
            }
            // Arbitrate among masters whose *head* transaction targets si.
            for (int i = 0; i < p.masters; ++i) {
                const int m = (s.rr + i) % p.masters;
                if (master_busy[static_cast<std::size_t>(m)]) continue;
                auto& q = queues[static_cast<std::size_t>(m)];
                if (q.empty() || q.front().slave != si) continue;
                s.master = m;
                s.born = q.front().born;
                s.busy_words = q.front().words + p.arbitration_cycles - 1;
                s.rr = (m + 1) % p.masters;
                master_busy[static_cast<std::size_t>(m)] = true;
                break;
            }
        }
    }

    Bus_load_point pt;
    pt.offered_words_per_cycle = rate * burst_words * p.masters;
    pt.accepted_words_per_cycle =
        static_cast<double>(words_done) / static_cast<double>(cycles);
    pt.avg_latency = latency.mean();
    pt.max_latency = latency.max();
    pt.transfers = transfers;
    return pt;
}

Router_phys_result estimate_crossbar_phys(const Technology& tech,
                                          const Crossbar_params& p)
{
    Router_phys_params rp;
    rp.in_ports = p.masters;
    rp.out_ports = p.slaves;
    rp.flit_width_bits = p.width_bits;
    rp.buffer_depth = 1; // output register only
    rp.vcs = 1;
    // Bus crossbars are laid out as regular bit slices (datapath
    // discipline), which roughly halves effective wiring congestion versus
    // the random-logic placement of a NoC switch.
    rp.wiring_discipline = 2.0;
    return estimate_router(tech, rp);
}

} // namespace noc
