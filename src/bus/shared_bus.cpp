#include "bus/shared_bus.h"

#include <stdexcept>

namespace noc {

namespace {

struct Pending {
    Cycle born;
    int words;
};

} // namespace

Bus_load_point simulate_shared_bus(const Bus_params& p, double rate,
                                   int burst_words, Cycle cycles,
                                   std::uint64_t seed)
{
    if (p.masters < 1 || p.width_bits < 1 || burst_words < 1 || rate < 0)
        throw std::invalid_argument{"simulate_shared_bus: bad parameters"};

    std::vector<std::deque<Pending>> queues(
        static_cast<std::size_t>(p.masters));
    std::vector<Rng> rngs;
    for (int m = 0; m < p.masters; ++m)
        rngs.emplace_back(seed * 31 + static_cast<std::uint64_t>(m));

    Accumulator latency;
    std::uint64_t transfers = 0;
    std::uint64_t words_done = 0;
    int busy_until_words = 0; // words left in the current transfer
    int current_master = -1;
    Cycle current_born = 0;
    int rr = 0;

    for (Cycle t = 0; t < cycles; ++t) {
        // Generation.
        for (int m = 0; m < p.masters; ++m)
            if (rngs[static_cast<std::size_t>(m)].next_bool(rate))
                queues[static_cast<std::size_t>(m)].push_back(
                    {t, burst_words});

        // Data phase: one word per cycle.
        if (busy_until_words > 0) {
            --busy_until_words;
            ++words_done;
            if (busy_until_words == 0) {
                latency.add(static_cast<double>(t - current_born + 1));
                ++transfers;
                queues[static_cast<std::size_t>(current_master)].pop_front();
            }
            continue;
        }
        // Arbitration: round-robin over masters with pending transfers;
        // the winner pays the arbitration cycles before data moves.
        for (int i = 0; i < p.masters; ++i) {
            const int m = (rr + i) % p.masters;
            if (!queues[static_cast<std::size_t>(m)].empty()) {
                current_master = m;
                current_born = queues[static_cast<std::size_t>(m)].front().born;
                busy_until_words =
                    queues[static_cast<std::size_t>(m)].front().words;
                rr = (m + 1) % p.masters;
                // Arbitration overhead: skip ahead.
                t += static_cast<Cycle>(p.arbitration_cycles - 1);
                break;
            }
        }
    }

    Bus_load_point pt;
    pt.offered_words_per_cycle = rate * burst_words * p.masters;
    pt.accepted_words_per_cycle =
        static_cast<double>(words_done) / static_cast<double>(cycles);
    pt.avg_latency = latency.mean();
    pt.max_latency = latency.max();
    pt.transfers = transfers;
    return pt;
}

Bus_load_point simulate_bridged_bus(const Bridged_bus_params& p, double rate,
                                    int burst_words, Cycle cycles,
                                    std::uint64_t seed)
{
    if (p.cross_fraction < 0 || p.cross_fraction > 1 || p.bridge_latency < 1)
        throw std::invalid_argument{"simulate_bridged_bus: bad parameters"};

    const int per_segment = std::max(1, p.segment.masters / 2);

    struct Seg {
        std::vector<std::deque<Pending>> queues;
        int busy_words = 0;
        int current = -1;
        Cycle born = 0;
        int rr = 0;
        bool current_is_bridge = false;
    };
    Seg segs[2];
    for (auto& s : segs)
        s.queues.resize(static_cast<std::size_t>(per_segment) + 1);
    // queue index per_segment = the bridge's ingress queue on that segment.

    std::vector<Rng> rngs;
    for (int m = 0; m < 2 * per_segment; ++m)
        rngs.emplace_back(seed * 77 + static_cast<std::uint64_t>(m));
    Rng cross_rng{seed * 131 + 7};

    struct In_bridge {
        Cycle ready;
        Cycle born;
        int words;
        int to_segment;
    };
    std::deque<In_bridge> bridge;

    Accumulator latency;
    std::uint64_t transfers = 0;
    std::uint64_t words_done = 0;

    for (Cycle t = 0; t < cycles; ++t) {
        for (int m = 0; m < 2 * per_segment; ++m) {
            if (!rngs[static_cast<std::size_t>(m)].next_bool(rate)) continue;
            const int seg = m / per_segment;
            const bool crosses = cross_rng.next_bool(p.cross_fraction);
            if (crosses && static_cast<int>(bridge.size()) >= p.bridge_queue)
                continue; // bridge full: transaction dropped at source
            if (crosses)
                bridge.push_back({t + static_cast<Cycle>(p.bridge_latency),
                                  t, burst_words, 1 - seg});
            else
                segs[seg].queues[static_cast<std::size_t>(m % per_segment)]
                    .push_back({t, burst_words});
        }
        // Bridge egress: ready transactions join the target segment queue.
        while (!bridge.empty() && bridge.front().ready <= t) {
            const auto& b = bridge.front();
            segs[b.to_segment]
                .queues[static_cast<std::size_t>(per_segment)]
                .push_back({b.born, b.words});
            bridge.pop_front();
        }
        for (auto& s : segs) {
            if (s.busy_words > 0) {
                --s.busy_words;
                ++words_done;
                if (s.busy_words == 0) {
                    latency.add(static_cast<double>(t - s.born + 1));
                    ++transfers;
                    s.queues[static_cast<std::size_t>(s.current)].pop_front();
                }
                continue;
            }
            const int n = per_segment + 1;
            for (int i = 0; i < n; ++i) {
                const int m = (s.rr + i) % n;
                if (!s.queues[static_cast<std::size_t>(m)].empty()) {
                    s.current = m;
                    s.born = s.queues[static_cast<std::size_t>(m)].front().born;
                    s.busy_words =
                        s.queues[static_cast<std::size_t>(m)].front().words;
                    s.rr = (m + 1) % n;
                    break;
                }
            }
        }
    }

    Bus_load_point pt;
    pt.offered_words_per_cycle =
        rate * burst_words * 2 * per_segment;
    pt.accepted_words_per_cycle =
        static_cast<double>(words_done) / static_cast<double>(cycles);
    pt.avg_latency = latency.mean();
    pt.max_latency = latency.max();
    pt.transfers = transfers;
    return pt;
}

} // namespace noc
