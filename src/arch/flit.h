// FLow control unITs — the atomic transfer unit of the network (§3: packets
// "are then serialized into a sequence of flits before transmission").
#pragma once

#include "arch/params.h"
#include "common/types.h"
#include "topology/route.h"

#include <cstdint>

namespace noc {

enum class Flit_kind : std::uint8_t { head, body, tail, head_tail };

[[nodiscard]] constexpr bool is_head(Flit_kind k)
{
    return k == Flit_kind::head || k == Flit_kind::head_tail;
}
[[nodiscard]] constexpr bool is_tail(Flit_kind k)
{
    return k == Flit_kind::tail || k == Flit_kind::head_tail;
}

/// One flit in flight. Head flits carry a non-owning pointer to their source
/// route (stored in the NI look-up tables, which outlive the simulation), so
/// forwarding a flit never allocates.
struct Flit {
    Flit_kind kind = Flit_kind::head_tail;
    Traffic_class cls = Traffic_class::request;
    Packet_id packet{};
    Flow_id flow{};
    Connection_id conn{};
    Core_id src{};
    Core_id dst{};
    /// Index of this flit within its packet (0 = head).
    std::uint32_t index = 0;
    /// Total flits in the packet.
    std::uint32_t packet_size = 1;
    /// Source route (head flits; nullptr on body/tail).
    const Route* route = nullptr;
    /// Next hop to execute in `route`.
    std::uint16_t route_index = 0;
    /// Effective VC occupied on the link this flit is currently crossing.
    std::uint16_t vc = 0;
    /// ACK/NACK link sequence number (assigned per link by the sender).
    std::uint32_t link_seq = 0;
    /// Response size the target must send back (0 = none); tail flits only.
    std::uint32_t reply_flits = 0;
    /// Cycle the packet was created (source-queue entry).
    Cycle birth = invalid_cycle;
    /// Cycle the head flit entered the network (left the source queue).
    Cycle inject = invalid_cycle;
    /// True when the packet was generated inside the measurement window.
    bool measured = false;
};

/// Reverse-channel token. One struct serves all three flow-control schemes;
/// `kind` discriminates (keeping the wire format trivially copyable).
struct Fc_token {
    enum class Kind : std::uint8_t { credit, on_off_mask, ack, nack };
    Kind kind = Kind::credit;
    /// credit: VC being credited.
    std::uint16_t vc = 0;
    /// on_off_mask: bit v set = VC v is stopped (OFF).
    std::uint32_t stop_mask = 0;
    /// ack/nack: link sequence number (ack: cumulative; nack: rewind point).
    std::uint32_t link_seq = 0;
};

} // namespace noc
