// FLow control unITs — the atomic transfer unit of the network (§3: packets
// "are then serialized into a sequence of flits before transmission").
//
// ## Flit ownership and lifetime (the Flit_pool contract)
//
// Flit payloads live in the per-system Flit_pool (arch/flit_pool.h); what
// moves through channels, VC rings, source queues and retransmission
// windows is a 4-byte Flit_ref handle. Every live handle has exactly one
// OWNER — the container responsible for eventually releasing it — and any
// number of transient borrows within a cycle:
//
//   * The NI ACQUIRES one slot per flit at INJECTION time (late
//     materialization: enqueue_packet only queues a compact per-packet
//     record, so open-loop backlogs hold no pool slots — see arch/ni.h).
//   * Under credit / ON-OFF flow control, ownership moves linearly with the
//     handle: source queue -> data channel -> router input VC ring ->
//     next channel -> ... -> ejection channel -> receiving NI, which
//     RELEASES the slot after reassembly bookkeeping and the delivery
//     listener have run. Nothing on the path copies the payload.
//   * Under ACK/NACK, Link_sender::send moves ownership into the sender's
//     retransmission window (the output-buffering cost the paper ascribes
//     to ACK/NACK schemes, §3). Each transmission puts an owned COPY of
//     the window slot on the wire — never a borrow, because with go-back-N
//     the same sequence number can be in flight twice and the cumulative
//     ACK for the first transmission may retire and recycle the window
//     slot while the duplicate is still crossing the link. The receiver
//     owns every arriving wire copy: it keeps accepts (they go straight
//     into the VC ring) and releases drops; the sender releases window
//     slots as the cumulative ACK retires them. Ejection ports bypass the
//     window, so their handles transfer ownership like the credit case.
//   * MULTICAST forks follow the same owned-copy rule. A multicast flit
//     travels each tree segment (topology/multicast.h) as one uniquely-
//     owned handle; at the branching switch the router neither forwards
//     nor borrows it — for each child segment it acquires a fresh slot,
//     copies the payload, and retargets the copy at its own branch
//     (route / route_index / mseg / dst). Branches copy at their own pace
//     (per-branch cursors, arch/router.h phase 1b), so the copies of one
//     flit may be born on different cycles; the parent handle stays parked
//     in the fork's input ring and is released only when the slowest
//     branch has taken it. Downstream of a fork each branch copy is an
//     ordinary uniquely-owned flit, so in-place mutation at later switches
//     stays legal and the ACK/NACK window rules compose per branch
//     unchanged.
//
// A Flit_ref held after its owner released it is DANGLING: dereferencing
// one through Flit_pool::operator[] is a simulator bug (not a recoverable
// condition) and throws in NOC_DEBUG builds; release builds do not check.
// Mutating a pooled flit in place (Router::step advances route_index and
// rewrites vc at switch traversal) is legal exactly because ownership is
// unique — the one owner is the party doing the mutation.
//
// Flit& references obtained from the pool stay valid across acquire()
// (chunked storage never relocates), so a delivery listener may enqueue new
// packets while holding the delivered tail flit.
#pragma once

#include "arch/params.h"
#include "common/types.h"
#include "topology/route.h"

#include <cstdint>

namespace noc {

struct Mcast_tree; // topology/multicast.h

enum class Flit_kind : std::uint8_t { head, body, tail, head_tail };

[[nodiscard]] constexpr bool is_head(Flit_kind k)
{
    return k == Flit_kind::head || k == Flit_kind::head_tail;
}
[[nodiscard]] constexpr bool is_tail(Flit_kind k)
{
    return k == Flit_kind::tail || k == Flit_kind::head_tail;
}

/// One flit in flight. Head flits carry a non-owning pointer to their source
/// route (stored in the NI look-up tables, which outlive the simulation), so
/// forwarding a flit never allocates.
struct Flit {
    Flit_kind kind = Flit_kind::head_tail;
    Traffic_class cls = Traffic_class::request;
    Packet_id packet{};
    Flow_id flow{};
    Connection_id conn{};
    Core_id src{};
    Core_id dst{};
    /// Index of this flit within its packet (0 = head).
    std::uint32_t index = 0;
    /// Total flits in the packet.
    std::uint32_t packet_size = 1;
    /// Source route (head flits; nullptr on body/tail).
    const Route* route = nullptr;
    /// Next hop to execute in `route`.
    std::uint16_t route_index = 0;
    /// Multicast destination-set tree this flit travels (nullptr =
    /// unicast). Non-owning: trees live in the NI-held Mcast_route_set,
    /// which outlives the simulation, like `route` above. When set,
    /// `route` points at segment `mseg`'s hop list and exhausting it at a
    /// switch that is NOT an ejection means "fork here" (Router::step
    /// makes one owned copy per child segment; see the ownership contract
    /// above). `dst` is the leaf destination once the flit enters a leaf
    /// segment; on interior segments it is the set's representative first
    /// destination (never ejected there).
    const Mcast_tree* mtree = nullptr;
    /// Segment of `mtree` this flit is currently traversing.
    std::uint16_t mseg = 0;
    /// Destination-set id carried by multicast packets (stats keying).
    Dset_id dset{};
    /// Effective VC occupied on the link this flit is currently crossing.
    std::uint16_t vc = 0;
    /// ACK/NACK link sequence number (assigned per link by the sender).
    std::uint32_t link_seq = 0;
    /// Response size the target must send back (0 = none); tail flits only.
    std::uint32_t reply_flits = 0;
    /// Route epoch the packet was injected under (bumped per online
    /// reroute, arch/noc_system.h): during an epoch-based live switchover
    /// old-epoch and new-epoch packets coexist in flight, and this stamp is
    /// the observable witness of which route function a flit follows.
    std::uint16_t route_epoch = 0;
    /// Cycle the packet was created (source-queue entry).
    Cycle birth = invalid_cycle;
    /// Cycle the head flit entered the network (left the source queue).
    Cycle inject = invalid_cycle;
    /// True when the packet was generated inside the measurement window.
    bool measured = false;
    /// Payload damaged by an injected transient fault (arch/fault_plan.h).
    /// Under ACK/NACK the receiver drops-and-NACKs a corrupted flit so the
    /// go-back-N window retransmits the clean original; schemes without
    /// link-level protection deliver it as-is (the corruption is counted
    /// either way).
    bool corrupted = false;
};

/// Reverse-channel token. One struct serves all three flow-control schemes;
/// `kind` discriminates (keeping the wire format trivially copyable).
struct Fc_token {
    enum class Kind : std::uint8_t { credit, on_off_mask, ack, nack };
    Kind kind = Kind::credit;
    /// credit: VC being credited.
    std::uint16_t vc = 0;
    /// on_off_mask: bit v set = VC v is stopped (OFF).
    std::uint32_t stop_mask = 0;
    /// ack/nack: link sequence number (ack: cumulative; nack: rewind point).
    std::uint32_t link_seq = 0;
};

} // namespace noc
