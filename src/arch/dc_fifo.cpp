#include "arch/dc_fifo.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace noc {

Dc_fifo_result simulate_dc_fifo(const Dc_fifo_params& p,
                                std::uint64_t item_count)
{
    if (p.writer_period_ns <= 0 || p.reader_period_ns <= 0 || p.depth < 2 ||
        p.sync_stages < 1)
        throw std::invalid_argument{"simulate_dc_fifo: bad parameters"};

    // Writer attempts an item every writer edge; it stalls while the FIFO is
    // full (full detection is itself conservative by sync_stages writer
    // edges, modelled by delaying visibility of reads to the writer).
    Dc_fifo_result res;
    res.min_latency_ns = std::numeric_limits<double>::infinity();

    std::deque<double> occupancy;  // write completion times of queued items
    std::uint64_t written = 0;
    std::uint64_t read = 0;
    double last_read_time = 0.0;

    // Read-pointer updates become visible to the writer sync_stages writer
    // periods late: recent reads wait in `pending_reads` until old enough,
    // then retire into the counter.
    std::deque<double> pending_reads;
    std::uint64_t visible_reads = 0;

    std::uint64_t writer_edge = 0;
    std::uint64_t reader_edge = 0;
    const auto writer_time = [&](std::uint64_t e) {
        return static_cast<double>(e) * p.writer_period_ns;
    };
    const auto reader_time = [&](std::uint64_t e) {
        return p.reader_phase_ns + static_cast<double>(e) * p.reader_period_ns;
    };

    while (read < item_count) {
        const double tw = writer_time(writer_edge);
        const double tr = reader_time(reader_edge);
        if (tw <= tr && written < item_count) {
            // Occupancy visible to the writer: items written minus reads
            // that happened at least sync_stages writer periods ago.
            while (!pending_reads.empty() &&
                   pending_reads.front() +
                           p.sync_stages * p.writer_period_ns <=
                       tw) {
                pending_reads.pop_front();
                ++visible_reads;
            }
            const std::uint64_t visible_occ = written - visible_reads;
            if (visible_occ < static_cast<std::uint64_t>(p.depth)) {
                occupancy.push_back(tw);
                ++written;
            }
            ++writer_edge;
        } else {
            // Reader edge: an item is visible once its write is at least
            // sync_stages reader periods old.
            if (!occupancy.empty() &&
                occupancy.front() + p.sync_stages * p.reader_period_ns <= tr) {
                const double latency = tr - occupancy.front();
                occupancy.pop_front();
                pending_reads.push_back(tr);
                ++read;
                last_read_time = tr;
                res.avg_latency_ns += latency;
                res.max_latency_ns = std::max(res.max_latency_ns, latency);
                res.min_latency_ns = std::min(res.min_latency_ns, latency);
            }
            ++reader_edge;
        }
    }

    res.items = item_count;
    res.avg_latency_ns /= static_cast<double>(item_count);
    res.throughput_per_ns =
        last_read_time > 0 ? static_cast<double>(item_count) / last_read_time
                           : 0.0;
    if (!std::isfinite(res.min_latency_ns)) res.min_latency_ns = 0.0;
    return res;
}

double synchronous_link_latency_ns(double period_ns, int pipeline_stages)
{
    if (period_ns <= 0 || pipeline_stages < 1)
        throw std::invalid_argument{"synchronous_link_latency_ns: bad args"};
    return period_ns * pipeline_stages;
}

} // namespace noc
