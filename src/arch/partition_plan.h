// Partition_plan — first-class description of how a system's switches are
// split into kernel shards (the sharded schedule of sim/kernel.h).
//
// The plan replaces the raw `shard_count` construction parameter: a value
// type that says both HOW MANY shards to build and WHERE the cut points go.
// Every plan produces contiguous switch-id blocks (spatially contiguous row
// bands on the row-major meshes) because the sharded kernel's race-freedom
// argument and the mailbox layout assume block partitions; what varies is
// how the cut points are chosen:
//
//   * contiguous(n)  — equal switch COUNTS per shard (the historical
//     behavior): switch s goes to shard s*n/S. Right when traffic is
//     roughly uniform across the die.
//   * balanced(n, w) — equal switch WEIGHT per shard: cut points minimize
//     the maximum block weight, where w[s] is switch s's expected work —
//     `flits_routed` counts from a profiling run (switch_load_profile), or
//     the synthesis flow's static bandwidth estimates
//     (route_weight_estimate). On a hotspot mesh this stops one hot shard
//     from bounding every cycle at the barrier.
//
// Which plan is chosen is partition METADATA, never simulation state:
// results are bit-identical for any plan (the equivalence suite pins
// contiguous vs balanced at 1/2/4 shards across all flow-control schemes).
//
// The balanced cut is guaranteed within one maximum switch weight of the
// ideal: max block weight <= total/n + max(w). assign() is deterministic —
// same inputs, same cuts, on every platform.
#pragma once

#include <cstdint>
#include <vector>

namespace noc {

class Topology;
class Route_set;

class Partition_plan {
public:
    /// Default plan: one shard (the sequential schedules).
    Partition_plan() = default;

    [[nodiscard]] static Partition_plan single() { return {}; }

    /// Equal-count contiguous blocks; reproduces the legacy `shard_count`
    /// partition exactly. Throws std::invalid_argument on shards == 0.
    [[nodiscard]] static Partition_plan contiguous(std::uint32_t shards);

    /// Weight-balanced contiguous blocks: `weights[s]` is switch s's
    /// expected work. The weight vector's size must equal the switch count
    /// of the system the plan is resolved against (assign() throws
    /// otherwise). All-zero weights degrade to contiguous().
    [[nodiscard]] static Partition_plan balanced(
        std::uint32_t shards, std::vector<std::uint64_t> weights);

    /// Shards the plan asks for (before clamping to the switch count).
    [[nodiscard]] std::uint32_t requested_shards() const { return shards_; }
    [[nodiscard]] bool is_balanced() const { return !weights_.empty(); }
    [[nodiscard]] const std::vector<std::uint64_t>& weights() const
    {
        return weights_;
    }

    /// Resolve the plan for a concrete system: per-switch shard ids,
    /// non-decreasing (contiguous blocks), every shard in
    /// [0, min(requested, switch_count)) non-empty. Throws
    /// std::invalid_argument when a balanced plan's weight vector does not
    /// match `switch_count`.
    [[nodiscard]] std::vector<std::uint32_t> assign(
        std::uint32_t switch_count) const;

private:
    std::uint32_t shards_ = 1;
    std::vector<std::uint64_t> weights_; ///< empty = contiguous
};

/// Static per-switch weight estimate from the route set alone: the number
/// of source-destination routes whose path crosses each switch (ejection
/// hop included). A synthesis-time stand-in for a profiling run — on
/// synthesized designs the route set covers exactly the application's
/// flows, so route coverage tracks offered bandwidth. Partial route sets
/// (empty entries) are fine; missing pairs simply contribute nothing.
[[nodiscard]] std::vector<std::uint64_t> route_weight_estimate(
    const Topology& topology, const Route_set& routes);

} // namespace noc
