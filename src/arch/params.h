// Network configuration shared by routers, NIs and the system builder.
#pragma once

#include <cstdint>

namespace noc {

/// Link-level flow control scheme (§3: ×pipes supports ACK/NACK with output
/// buffering and ON/OFF backpressure without; credit-based is the common
/// third scheme and our default).
enum class Flow_control_kind : std::uint8_t { credit, on_off, ack_nack };

/// Traffic classes map to disjoint VC ranges so that request/response
/// (message-dependent) coupling and GT/BE sharing can never deadlock or
/// interfere at the buffer level.
enum class Traffic_class : std::uint8_t { request = 0, response = 1, gt = 2 };

struct Network_params {
    /// Physical flit (link) width in bits — the serialization knob of §4.1.
    int flit_width_bits = 32;
    /// VCs available to the routing function per class (2 enables datelines).
    int route_vcs = 1;
    /// Give responses their own VC plane (breaks request/response deadlock).
    bool separate_response_class = false;
    /// Add a dedicated highest-priority VC for Æthereal-style GT traffic.
    bool enable_gt = false;
    /// Input buffer depth per VC, in flits.
    int buffer_depth = 4;
    Flow_control_kind fc = Flow_control_kind::credit;
    /// Retransmission window (output buffer) for ACK/NACK, in flits.
    int output_buffer_depth = 8;
    /// TDMA slot-table length when enable_gt (Æthereal §3).
    int slot_table_length = 16;
    /// NoC clock, for bandwidth/latency reporting only.
    double clock_ghz = 1.0;

    [[nodiscard]] int class_count() const
    {
        return separate_response_class ? 2 : 1;
    }
    /// Total VCs instantiated per link.
    [[nodiscard]] int total_vcs() const
    {
        return route_vcs * class_count() + (enable_gt ? 1 : 0);
    }
    /// Dedicated GT VC index (only meaningful when enable_gt).
    [[nodiscard]] int gt_vc() const { return total_vcs() - 1; }
    /// Effective VC for a flit of class `cls` whose route requests
    /// `route_vc` on the next link.
    [[nodiscard]] int effective_vc(Traffic_class cls, int route_vc) const;

    /// Throws std::invalid_argument on inconsistent settings.
    void validate() const;
};

} // namespace noc
