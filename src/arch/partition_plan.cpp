#include "arch/partition_plan.h"

#include "topology/graph.h"
#include "topology/route.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace noc {

namespace {

/// Can `weights` be split into <= `shards` contiguous blocks of sum <= cap?
bool feasible(const std::vector<std::uint64_t>& weights,
              std::uint32_t shards, std::uint64_t cap)
{
    std::uint32_t blocks = 1;
    std::uint64_t sum = 0;
    for (const std::uint64_t w : weights) {
        if (sum + w > cap) {
            if (++blocks > shards) return false;
            sum = 0;
        }
        sum += w;
    }
    return true;
}

} // namespace

Partition_plan Partition_plan::contiguous(std::uint32_t shards)
{
    if (shards == 0)
        throw std::invalid_argument{"Partition_plan: shards must be >= 1"};
    Partition_plan p;
    p.shards_ = shards;
    return p;
}

Partition_plan Partition_plan::balanced(std::uint32_t shards,
                                        std::vector<std::uint64_t> weights)
{
    if (shards == 0)
        throw std::invalid_argument{"Partition_plan: shards must be >= 1"};
    if (weights.empty())
        throw std::invalid_argument{
            "Partition_plan: balanced plan needs a weight per switch"};
    Partition_plan p;
    p.shards_ = shards;
    p.weights_ = std::move(weights);
    return p;
}

std::vector<std::uint32_t> Partition_plan::assign(
    std::uint32_t switch_count) const
{
    if (switch_count == 0)
        throw std::invalid_argument{"Partition_plan: no switches"};
    const std::uint32_t n = std::min(shards_, switch_count);
    std::vector<std::uint32_t> shard_of(switch_count, 0);

    if (weights_.empty() ||
        std::all_of(weights_.begin(), weights_.end(),
                    [](std::uint64_t w) { return w == 0; })) {
        if (!weights_.empty() && weights_.size() != switch_count)
            throw std::invalid_argument{
                "Partition_plan: weight count != switch count"};
        // Legacy equal-count cut: switch s -> s * n / S.
        for (std::uint32_t s = 0; s < switch_count; ++s)
            shard_of[s] = static_cast<std::uint32_t>(
                static_cast<std::uint64_t>(s) * n / switch_count);
        return shard_of;
    }

    if (weights_.size() != switch_count)
        throw std::invalid_argument{
            "Partition_plan: weight count != switch count"};

    // Minimize the maximum block weight: binary-search the cap (the classic
    // linear-partition bound), then cut greedily under it while reserving
    // one switch for every remaining shard. The optimum is <= total/n +
    // max(w): a greedy pass with that cap never opens an (n+1)-th block.
    const std::uint64_t total =
        std::accumulate(weights_.begin(), weights_.end(), std::uint64_t{0});
    std::uint64_t lo = *std::max_element(weights_.begin(), weights_.end());
    std::uint64_t hi = total;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (feasible(weights_, n, mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    const std::uint64_t cap = lo;

    std::uint32_t next = 0;
    for (std::uint32_t shard = 0; shard < n; ++shard) {
        const std::uint32_t reserved = n - shard - 1;
        std::uint64_t sum = 0;
        const std::uint32_t start = next;
        while (next < switch_count - reserved) {
            if (next > start && sum + weights_[next] > cap) break;
            sum += weights_[next];
            ++next;
        }
        for (std::uint32_t s = start; s < next; ++s) shard_of[s] = shard;
    }
    return shard_of;
}

std::vector<std::uint64_t> route_weight_estimate(const Topology& topology,
                                                 const Route_set& routes)
{
    std::vector<std::uint64_t> weights(
        static_cast<std::size_t>(topology.switch_count()), 0);
    for (int s = 0; s < topology.core_count(); ++s) {
        for (int d = 0; d < topology.core_count(); ++d) {
            if (s == d) continue;
            const Route& r =
                routes.at(Core_id{static_cast<std::uint32_t>(s)},
                          Core_id{static_cast<std::uint32_t>(d)});
            if (r.empty()) continue;
            Switch_id sw = topology.core_switch(
                Core_id{static_cast<std::uint32_t>(s)});
            for (std::size_t h = 0; h < r.size(); ++h) {
                ++weights[sw.get()];
                const Link_id l = topology.link_of_output_port(
                    sw, Port_id{r[h].out_port});
                if (!l.is_valid()) break; // ejection: route ends here
                sw = topology.link(l).to;
            }
        }
    }
    return weights;
}

} // namespace noc
