#include "arch/ni.h"

#include <algorithm>
#include <stdexcept>

namespace noc {

Ni::Ni(Core_id core, const Network_params& params, const Route_set* routes,
       Flit_channel* inject_data, Token_channel* inject_tokens,
       Flit_channel* eject_data, Network_stats* stats)
    : core_{core},
      params_{params},
      routes_{routes},
      sender_{params, inject_data, inject_tokens, false},
      eject_data_{eject_data},
      stats_{stats}
{
    if (routes_ == nullptr || eject_data_ == nullptr || stats_ == nullptr)
        throw std::invalid_argument{"Ni: null dependency"};
}

std::string Ni::name() const
{
    return "ni" + std::to_string(core_.get());
}

bool Ni::is_quiescent() const
{
    return idle() && sender_.is_quiescent() &&
           (!source_ || source_may_sleep_);
}

void Ni::set_source(std::unique_ptr<Traffic_source> source)
{
    source_ = std::move(source);
    request_wake();
}

void Ni::set_slot_table(std::vector<Connection_id> slot_owner)
{
    if (!params_.enable_gt)
        throw std::logic_error{"Ni::set_slot_table: GT not enabled"};
    if (slot_owner.size() !=
        static_cast<std::size_t>(params_.slot_table_length))
        throw std::invalid_argument{"Ni::set_slot_table: length mismatch"};
    slot_owner_ = std::move(slot_owner);
}

void Ni::enqueue_packet(const Packet_desc& desc, Cycle now)
{
    // New work may arrive while this NI is descheduled (tests, transaction
    // adapters, delivery listeners on other components).
    request_wake();
    if (desc.dst == core_)
        throw std::invalid_argument{"Ni: packet addressed to self"};
    if (desc.size_flits == 0)
        throw std::invalid_argument{"Ni: empty packet"};
    if (desc.cls == Traffic_class::gt && desc.size_flits != 1)
        throw std::invalid_argument{
            "Ni: GT connections are flit-granular (one flit per reserved "
            "slot, Æthereal-style); send size-1 packets"};
    const Route* route = &routes_->at(core_, desc.dst);
    if (route->empty())
        throw std::logic_error{"Ni: no route to destination"};

    // Unique packet id: core in the upper bits, local sequence below.
    const Packet_id pid{(static_cast<std::uint64_t>(core_.get()) << 40) |
                        next_packet_seq_++};
    const bool measured = stats_->in_measurement(now);
    stats_->on_packet_created(desc.flow, now, measured);

    for (std::uint32_t i = 0; i < desc.size_flits; ++i) {
        Flit f;
        if (desc.size_flits == 1)
            f.kind = Flit_kind::head_tail;
        else if (i == 0)
            f.kind = Flit_kind::head;
        else if (i + 1 == desc.size_flits)
            f.kind = Flit_kind::tail;
        else
            f.kind = Flit_kind::body;
        f.cls = desc.cls;
        f.packet = pid;
        f.flow = desc.flow;
        f.conn = desc.conn;
        f.src = core_;
        f.dst = desc.dst;
        f.index = i;
        f.packet_size = desc.size_flits;
        f.route = is_head(f.kind) ? route : nullptr;
        f.route_index = 0;
        if (is_tail(f.kind)) f.reply_flits = desc.reply_flits;
        f.birth = now;
        f.measured = measured;
        if (f.cls == Traffic_class::gt)
            gt_queue_.push_back(std::move(f));
        else
            queue_.push_back(std::move(f));
    }
}

void Ni::poll_source(Cycle now)
{
    if (!source_) return;
    if (const auto desc = source_->poll(now)) enqueue_packet(*desc, now);
}

void Ni::release_replies(Cycle now)
{
    while (!pending_replies_.empty() &&
           pending_replies_.front().first <= now) {
        enqueue_packet(pending_replies_.front().second, now);
        pending_replies_.pop_front();
    }
}

void Ni::inject(Cycle now)
{
    // Æthereal slot gating: the current slot's owning connection may send
    // its oldest queued flit (per-connection FIFO semantics over one queue).
    if (!gt_queue_.empty()) {
        if (slot_owner_.empty())
            throw std::logic_error{"Ni: GT flit but no slot table"};
        const auto slot = static_cast<std::size_t>(now % slot_owner_.size());
        const Connection_id owner = slot_owner_[slot];
        if (owner.is_valid()) {
            const auto it = std::find_if(
                gt_queue_.begin(), gt_queue_.end(),
                [owner](const Flit& f) { return f.conn == owner; });
            if (it != gt_queue_.end()) {
                const int vc = params_.effective_vc(Traffic_class::gt, 0);
                if (sender_.can_send(vc)) {
                    Flit out = std::move(*it);
                    gt_queue_.erase(it);
                    out.vc = static_cast<std::uint16_t>(vc);
                    out.inject = now;
                    stats_->on_packet_injected(now);
                    sender_.send(std::move(out));
                    return; // one flit per cycle on the injection link
                }
            }
        }
    }

    if (queue_.empty()) return;
    Flit& f = queue_.front();
    const int vc = params_.effective_vc(f.cls, 0);
    if (!sender_.can_send(vc)) return;
    Flit out = std::move(f);
    queue_.pop_front();
    out.vc = static_cast<std::uint16_t>(vc);
    if (is_head(out.kind)) {
        out.inject = now;
        stats_->on_packet_injected(now);
    }
    sender_.send(std::move(out));
}

void Ni::eject(Cycle now)
{
    const auto& arriving = eject_data_->out();
    if (!arriving) return;
    const Flit& f = *arriving;
    auto& received = reassembly_[f.packet];
    ++received;
    if (!is_tail(f.kind)) return;
    if (received != f.packet_size)
        throw std::logic_error{"Ni: tail arrived before full packet "
                               "(wormhole ordering violated)"};
    reassembly_.erase(f.packet);
    stats_->on_packet_delivered(f.flow, f.packet_size, f.birth, f.inject,
                                now, f.measured);
    if (on_delivery_) on_delivery_(f, now);
    if (f.reply_flits > 0) {
        Packet_desc reply;
        reply.dst = f.src;
        reply.size_flits = f.reply_flits;
        reply.cls = Traffic_class::response;
        reply.flow = f.flow;
        pending_replies_.emplace_back(now + reply_latency_, reply);
    }
}

void Ni::step(Cycle now)
{
    sender_.begin_cycle();
    release_replies(now);
    poll_source(now);
    inject(now);
    sender_.end_cycle();
    eject(now);

    // Activity gating: if the source promises no poll before cycle `at`,
    // this NI may sleep once otherwise idle — with a timed kernel wake at
    // the promised cycle so the injection happens exactly when the
    // reference schedule (which polls every cycle) would make it.
    if (source_) {
        const Cycle at = source_->next_poll_at(now);
        source_may_sleep_ = at > now + 1; // also true for invalid_cycle
        if (source_may_sleep_ && at != invalid_cycle && idle() &&
            sender_.is_quiescent())
            request_wake_at(at);
    }
}

} // namespace noc
