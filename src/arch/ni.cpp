#include "arch/ni.h"

#include "topology/multicast.h"

#include <stdexcept>
#include <string>

namespace noc {

Ni::Ni(Core_id core, const Network_params& params, Flit_pool* pool,
       const Route_set* routes, Flit_channel* inject_data,
       Token_channel* inject_tokens, Flit_channel* eject_data,
       Network_stats* stats)
    : core_{core},
      params_{params},
      pool_{pool},
      routes_{routes},
      sender_{params, pool, inject_data, inject_tokens, false},
      eject_data_{eject_data},
      stats_{stats}
{
    if (pool_ == nullptr || routes_ == nullptr || eject_data_ == nullptr ||
        stats_ == nullptr)
        throw std::invalid_argument{"Ni: null dependency"};
    stats_slot_ = &stats_->slot(0);
    sender_.set_wake_target(this);
}

void Ni::set_stats_slot(Network_stats::Slot* slot)
{
    if (slot == nullptr)
        throw std::invalid_argument{"Ni: null stats slot"};
    stats_slot_ = slot;
}

std::string Ni::name() const
{
    return "ni" + std::to_string(core_.get());
}

bool Ni::is_quiescent() const
{
    return may_sleep_;
}

void Ni::set_source(std::unique_ptr<Traffic_source> source)
{
    source_ = std::move(source);
    may_sleep_ = false;
    request_wake();
}

void Ni::set_inject_paused(bool paused)
{
    inject_paused_ = paused;
    may_sleep_ = false;
    request_wake();
}

void Ni::set_routes(const Route_set* routes)
{
    if (routes == nullptr)
        throw std::invalid_argument{"Ni::set_routes: null route set"};
    routes_ = routes;
    ++epoch_; // new injections are stamped with the new route epoch
}

void Ni::schedule_replay(Packet_id pid, Cycle release)
{
    const auto it = awaiting_ack_.find(pid);
    if (it == awaiting_ack_.end())
        throw std::logic_error{"Ni::schedule_replay: no replay record"};
    ++it->second.attempts;
    // Sorted insert by release cycle; ties keep insertion order (the
    // caller schedules in packet-id order), so releases are deterministic.
    auto pos = replay_queue_.begin();
    while (pos != replay_queue_.end() && pos->first <= release) ++pos;
    replay_queue_.insert(pos, {release, pid});
    may_sleep_ = false;
    request_wake();
}

void Ni::release_replays(Cycle now)
{
    while (!replay_queue_.empty() && replay_queue_.front().first <= now) {
        const Packet_id pid = replay_queue_.front().second;
        replay_queue_.pop_front();
        const auto it = awaiting_ack_.find(pid);
        if (it == awaiting_ack_.end()) continue; // acked or powered off
        const Replay_record& rec = it->second;
        const Route* route = &routes_->at(core_, rec.dst);
        if (route->empty()) {
            // The reroute left this pair disconnected: the packet is now
            // conclusively undeliverable. It was counted created at its
            // original enqueue, so only the drop is recorded here.
            stats_slot_->on_packet_unreachable(rec.measured, rec.size_flits);
            awaiting_ack_.erase(it);
            continue;
        }
        Pending_packet p;
        p.dst = rec.dst;
        p.size_flits = rec.size_flits;
        p.reply_flits = rec.reply_flits;
        p.cls = rec.cls;
        p.flow = rec.flow;
        p.conn = rec.conn;
        p.route = route;
        p.pid = pid; // the SAME packet: not re-counted as created
        p.birth = rec.birth;
        p.measured = rec.measured;
        p.epoch = epoch_;
        queued_flits_ += p.size_flits;
        enqueued_this_step_ = true;
        if (p.cls == Traffic_class::gt)
            gt_queue_.push(p);
        else
            queue_.push(p);
    }
}

void Ni::set_slot_table(std::vector<Connection_id> slot_owner)
{
    if (!params_.enable_gt)
        throw std::logic_error{"Ni::set_slot_table: GT not enabled"};
    if (slot_owner.size() !=
        static_cast<std::size_t>(params_.slot_table_length))
        throw std::invalid_argument{"Ni::set_slot_table: length mismatch"};
    slot_owner_ = std::move(slot_owner);
}

void Ni::enqueue_packet(const Packet_desc& desc, Cycle now)
{
    // New work may arrive while this NI is descheduled (tests, transaction
    // adapters, delivery listeners on other components).
    request_wake();
    may_sleep_ = false;
    enqueued_this_step_ = true;
    if (desc.size_flits == 0)
        throw std::invalid_argument{"Ni: empty packet"};
    if (desc.dset.is_valid()) {
        enqueue_multicast(desc, now);
        return;
    }
    if (desc.dst == core_)
        throw std::invalid_argument{"Ni: packet addressed to self"};
    if (powered_off_) {
        // Dead core (router death / region power-off): offered traffic is
        // counted and discarded, exactly like the no-route case below.
        const bool measured = stats_->in_measurement(now);
        stats_slot_->on_packet_created(desc.flow, now, measured);
        stats_slot_->on_packet_unreachable(measured, desc.size_flits);
        return;
    }
    if (desc.cls == Traffic_class::gt && desc.size_flits != 1)
        throw std::invalid_argument{
            "Ni: GT connections are flit-granular (one flit per reserved "
            "slot, Æthereal-style); send size-1 packets"};
    const Route* route = &routes_->at(core_, desc.dst);
    if (route->empty()) {
        if (!fault_tolerant_)
            throw std::logic_error{"Ni: no route to destination"};
        // The pair is disconnected (permanent link failure): the offered
        // packet is counted — created, dropped, unreachable — and discarded
        // so the workload keeps running instead of hanging or throwing.
        const bool measured = stats_->in_measurement(now);
        stats_slot_->on_packet_created(desc.flow, now, measured);
        stats_slot_->on_packet_unreachable(measured, desc.size_flits);
        return;
    }

    // Unique packet id: core in the upper bits, local sequence below.
    const Packet_id pid{(static_cast<std::uint64_t>(core_.get()) << 40) |
                        next_packet_seq_++};
    const bool measured = stats_->in_measurement(now);
    stats_slot_->on_packet_created(desc.flow, now, measured);

    Pending_packet p;
    p.dst = desc.dst;
    p.size_flits = desc.size_flits;
    p.reply_flits = desc.reply_flits;
    p.cls = desc.cls;
    p.flow = desc.flow;
    p.conn = desc.conn;
    p.route = route;
    p.pid = pid;
    p.birth = now;
    p.measured = measured;
    p.epoch = epoch_;
    queued_flits_ += desc.size_flits;
    if (replay_protocol_) {
        Replay_record rec;
        rec.dst = desc.dst;
        rec.size_flits = desc.size_flits;
        rec.reply_flits = desc.reply_flits;
        rec.cls = desc.cls;
        rec.flow = desc.flow;
        rec.conn = desc.conn;
        rec.birth = now;
        rec.measured = measured;
        awaiting_ack_.emplace(pid, rec);
    }
    if (desc.cls == Traffic_class::gt)
        gt_queue_.push(p);
    else
        queue_.push(p);
}

void Ni::enqueue_multicast(const Packet_desc& desc, Cycle now)
{
    if (desc.cls == Traffic_class::gt)
        throw std::invalid_argument{
            "Ni: multicast is best-effort only (no GT class)"};
    // Absorb condition for deadlock-free tree forks: a lagging branch must
    // always be able to reach its tail from the flits already buffered at
    // the fork, so a multicast packet must fit a router input buffer
    // (arch/router.h, phase 1b).
    if (desc.size_flits > static_cast<std::uint32_t>(params_.buffer_depth))
        throw std::invalid_argument{
            "Ni: multicast packet exceeds buffer_depth (" +
            std::to_string(desc.size_flits) + " > " +
            std::to_string(params_.buffer_depth) +
            " flits); tree forks absorb a whole packet per branch"};
    if (mroutes_ == nullptr)
        throw std::logic_error{
            "Ni: multicast packet but no multicast routes installed"};
    const Mcast_tree& tree = mroutes_->at(core_, desc.dset);
    if (tree.empty())
        throw std::logic_error{
            "Ni: multicast destination set has no members beyond this core"};
    const auto dests =
        static_cast<std::uint32_t>(tree.destinations.size());
    const bool measured = stats_->in_measurement(now);
    // One creation per destination, so per-destination deliveries balance
    // packets_in_flight; the multicast counter records the packet itself.
    for (std::uint32_t d = 0; d < dests; ++d)
        stats_slot_->on_packet_created(desc.flow, now, measured);
    stats_slot_->on_multicast_created(dests);
    if (powered_off_) {
        for (std::uint32_t d = 0; d < dests; ++d)
            stats_slot_->on_packet_unreachable(measured, desc.size_flits);
        return;
    }
    // Multicast does not compose with the end-to-end replay protocol (one
    // replay record cannot represent per-destination delivery state), so no
    // replay record is kept: a purged multicast packet stays dropped.
    const Packet_id pid{(static_cast<std::uint64_t>(core_.get()) << 40) |
                        next_packet_seq_++};
    ++mcast_packets_injected_;
    Pending_packet p;
    p.dst = tree.segments[0].dst; // representative; retargeted per branch
    p.size_flits = desc.size_flits;
    p.reply_flits = desc.reply_flits;
    p.cls = desc.cls;
    p.flow = desc.flow;
    p.conn = desc.conn;
    p.route = &tree.segments[0].hops;
    p.pid = pid;
    p.birth = now;
    p.measured = measured;
    p.epoch = epoch_;
    p.mtree = &tree;
    queued_flits_ += desc.size_flits;
    queue_.push(p);
}

Flit_ref Ni::materialize_flit(Pending_packet& p, Cycle now, int vc)
{
    const Flit_ref ref = pool_->acquire();
    Flit& f = (*pool_)[ref];
    const std::uint32_t i = p.next_flit;
    if (p.size_flits == 1)
        f.kind = Flit_kind::head_tail;
    else if (i == 0)
        f.kind = Flit_kind::head;
    else if (i + 1 == p.size_flits)
        f.kind = Flit_kind::tail;
    else
        f.kind = Flit_kind::body;
    f.cls = p.cls;
    f.packet = p.pid;
    f.flow = p.flow;
    f.conn = p.conn;
    f.src = core_;
    f.dst = p.dst;
    f.index = i;
    f.packet_size = p.size_flits;
    f.route = is_head(f.kind) ? p.route : nullptr;
    f.route_index = 0;
    f.route_epoch = p.epoch;
    if (p.mtree != nullptr) {
        // Every flit (not just the head) carries the tree: body/tail
        // replication at a fork reads the branch targets through it.
        f.mtree = p.mtree;
        f.mseg = 0;
        f.dset = p.mtree->dset;
    }
    if (is_tail(f.kind)) f.reply_flits = p.reply_flits;
    f.birth = p.birth;
    f.measured = p.measured;
    f.vc = static_cast<std::uint16_t>(vc);
    if (is_head(f.kind)) {
        f.inject = now;
        stats_slot_->on_packet_injected(now);
    }
    ++p.next_flit;
    --queued_flits_;
    return ref;
}

void Ni::poll_source(Cycle now)
{
    if (!source_) return;
    if (const auto desc = source_->poll(now)) enqueue_packet(*desc, now);
}

void Ni::release_replies(Cycle now)
{
    while (!pending_replies_.empty() &&
           pending_replies_.front().first <= now) {
        enqueue_packet(pending_replies_.front().second, now);
        pending_replies_.pop_front();
    }
}

void Ni::inject(Cycle now)
{
    // Reroute in progress: no NEW packet may start until the fault engine
    // republishes route tables (set_inject_paused), but a packet already
    // mid-serialization must finish — its head flits hold wormhole
    // resources in the network, and the drain the reroute waits on can
    // only complete once the tail follows them out. GT packets are
    // single-flit, so pausing blocks them entirely.
    const bool mid_packet = !queue_.empty() && queue_.front().next_flit > 0;
    if (inject_paused_ && !mid_packet) return;

    // Æthereal slot gating: the current slot's owning connection may send
    // its oldest queued flit (per-connection FIFO semantics over one
    // queue). GT packets are single-flit (enforced in enqueue_packet).
    if (!gt_queue_.empty() && !inject_paused_) {
        if (slot_owner_.empty())
            throw std::logic_error{"Ni: GT flit but no slot table"};
        const auto slot = static_cast<std::size_t>(now % slot_owner_.size());
        const Connection_id owner = slot_owner_[slot];
        if (owner.is_valid()) {
            for (std::size_t i = 0; i < gt_queue_.size(); ++i) {
                if (gt_queue_[i].conn != owner) continue;
                const int vc = params_.effective_vc(Traffic_class::gt, 0);
                if (!sender_.can_send(vc)) break;
                Pending_packet p = gt_queue_.erase_at(i);
                const Flit_ref ref = materialize_flit(p, now, vc);
                sent_this_step_ = true;
                sender_.send(ref);
                return; // one flit per cycle on the injection link
            }
        }
    }

    if (queue_.empty()) return;
    Pending_packet& p = queue_.front();
    const int vc = params_.effective_vc(p.cls, 0);
    if (!sender_.can_send(vc)) return;
    const Flit_ref ref = materialize_flit(p, now, vc);
    if (p.next_flit == p.size_flits) (void)queue_.pop();
    sent_this_step_ = true;
    sender_.send(ref);
}

void Ni::eject(Cycle now)
{
    const auto& arriving = eject_data_->out();
    if (!arriving) return;
    const Flit_ref ref = *arriving;
    const Flit& f = (*pool_)[ref];
    ++flits_ejected_;
    auto& received = reassembly_[f.packet];
    ++received;
    if (!is_tail(f.kind)) {
        pool_->release(ref); // ownership ended at ejection
        return;
    }
    if (received != f.packet_size)
        throw std::logic_error{
            "Ni: tail arrived before full packet "
            "(wormhole ordering violated) pid=" +
            std::to_string(f.packet.get()) + " src=" +
            std::to_string(f.src.get()) + " dst=" +
            std::to_string(f.dst.get()) + " received=" +
            std::to_string(received) + " size=" +
            std::to_string(f.packet_size) + " now=" + std::to_string(now)};
    reassembly_.erase(f.packet);
    stats_slot_->on_packet_delivered(f.flow, f.packet_size, f.birth,
                                     f.inject, now, f.measured);
    if (f.dset.is_valid()) {
        // One multicast destination completed here; the other members'
        // branch copies are counted by their own NIs.
        ++mcast_deliveries_;
        stats_slot_->on_multicast_delivered();
    }
    // End-to-end replay: remember the delivery so the fault engine can ack
    // the source NI's replay record at the next sequential point.
    if (replay_protocol_) delivered_pids_.push_back(f.packet);
    if (on_delivery_) on_delivery_(f, now);
    if (f.reply_flits > 0) {
        Packet_desc reply;
        reply.dst = f.src;
        reply.size_flits = f.reply_flits;
        reply.cls = Traffic_class::response;
        reply.flow = f.flow;
        pending_replies_.emplace_back(now + reply_latency_, reply);
    }
    pool_->release(ref);
}

void Ni::compute_sleep(Cycle now)
{
    // Drained sleep: nothing queued anywhere, sender caught up, source
    // quiet. Partial reassemblies are pure state — the flits that complete
    // them arrive over the eject channel, whose wake edge re-arms us.
    const bool source_quiet = !source_ || source_may_sleep_;
    bool sleep = false;
    bool blocked = false;
    if (queue_.empty() && gt_queue_.empty()) {
        sleep = sender_.is_quiescent() && source_quiet;
    } else if (!queue_.empty() && gt_queue_.empty() && !sent_this_step_ &&
               !enqueued_this_step_) {
        // Injection-blocked sleep (saturated fast path): a backlog exists
        // but this whole step neither sent nor enqueued, so the head flit
        // is blocked on link-level flow control — passive until a token
        // changes sender state. GT backlogs keep us awake: their gating is
        // a function of the cycle number (TDMA slot), not of an event.
        sleep = sender_.is_quiescent() && source_quiet;
        blocked = sleep;
    }
    // A reply (or replay release) due this cycle or next needs a step NOW;
    // a timed wake cannot express "this cycle" (the kernel would clobber it
    // with the sleep decision), so stay awake for it.
    if (!pending_replies_.empty() && pending_replies_.front().first <= now)
        sleep = blocked = false;
    if (!replay_queue_.empty() && replay_queue_.front().first <= now)
        sleep = blocked = false;
    if (sleep) {
        // Timed wakes for everything we promised to do later.
        if (source_ && next_source_poll_ != invalid_cycle)
            request_wake_at(next_source_poll_);
        if (!pending_replies_.empty())
            request_wake_at(pending_replies_.front().first);
        if (!replay_queue_.empty())
            request_wake_at(replay_queue_.front().first);
    }
    sender_.set_wake_on_token(blocked);
    may_sleep_ = sleep;
}

void Ni::step(Cycle now)
{
    sent_this_step_ = false;
    enqueued_this_step_ = false;
    sender_.begin_cycle();
    release_replies(now);
    release_replays(now);
    poll_source(now);
    inject(now);
    sender_.end_cycle();
    eject(now);

    // Activity gating: if the source promises no poll before cycle `at`,
    // this NI may sleep once otherwise passive — with a timed kernel wake
    // at the promised cycle so the injection happens exactly when the
    // reference schedule (which polls every cycle) would make it.
    if (source_) {
        const Cycle at = source_->next_poll_at(now);
        source_may_sleep_ = at > now + 1; // also true for invalid_cycle
        next_source_poll_ = at;
    }
    compute_sleep(now);
}

} // namespace noc
