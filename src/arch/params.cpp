#include "arch/params.h"

#include <stdexcept>

namespace noc {

int Network_params::effective_vc(Traffic_class cls, int route_vc) const
{
    switch (cls) {
    case Traffic_class::request: return route_vc;
    case Traffic_class::response:
        return separate_response_class ? route_vcs + route_vc : route_vc;
    case Traffic_class::gt:
        if (!enable_gt)
            throw std::logic_error{"effective_vc: GT class without enable_gt"};
        return gt_vc();
    }
    throw std::logic_error{"effective_vc: bad class"};
}

void Network_params::validate() const
{
    if (flit_width_bits <= 0)
        throw std::invalid_argument{"Network_params: flit width <= 0"};
    if (route_vcs <= 0)
        throw std::invalid_argument{"Network_params: route_vcs <= 0"};
    if (buffer_depth < 2)
        throw std::invalid_argument{
            "Network_params: buffer_depth must be >= 2 (ON/OFF margin)"};
    if (fc == Flow_control_kind::ack_nack && total_vcs() != 1)
        throw std::invalid_argument{
            "Network_params: ACK/NACK flow control supports a single VC "
            "(×pipes-style plain wormhole links)"};
    if (fc == Flow_control_kind::ack_nack && output_buffer_depth < 4)
        throw std::invalid_argument{
            "Network_params: ACK/NACK needs an output buffer covering the "
            "round trip (>= 4 flits)"};
    if (enable_gt && slot_table_length < 2)
        throw std::invalid_argument{"Network_params: slot table too short"};
    if (clock_ghz <= 0.0)
        throw std::invalid_argument{"Network_params: clock <= 0"};
}

} // namespace noc
