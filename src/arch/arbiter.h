// Arbiters: resolve conflicts "between packets when they require access to
// the same physical link" (§3, Fig. 1a).
#pragma once

#include <cstdint>
#include <vector>

namespace noc {

/// Round-robin arbiter over `size` requesters. `pick` returns the granted
/// index or -1; the grant pointer advances past the winner (strong
/// fairness among persistent requesters).
class Round_robin_arbiter {
public:
    explicit Round_robin_arbiter(int size);

    /// `requests[i]` true if requester i wants the resource this cycle.
    [[nodiscard]] int pick(const std::vector<bool>& requests);

    [[nodiscard]] int size() const { return size_; }

private:
    int size_;
    int next_ = 0;
};

/// Fixed-priority arbiter: lowest index wins. Used for GT-over-BE priority
/// selection and as a baseline in fairness tests.
class Fixed_priority_arbiter {
public:
    explicit Fixed_priority_arbiter(int size);

    [[nodiscard]] int pick(const std::vector<bool>& requests) const;

    [[nodiscard]] int size() const { return size_; }

private:
    int size_;
};

} // namespace noc
