// Arbiters: resolve conflicts "between packets when they require access to
// the same physical link" (§3, Fig. 1a).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace noc {

/// Round-robin arbiter over `size` requesters. `pick` returns the granted
/// index or -1; the grant pointer advances past the winner (strong
/// fairness among persistent requesters).
class Round_robin_arbiter {
public:
    explicit Round_robin_arbiter(int size);

    /// `requests[i]` true if requester i wants the resource this cycle.
    [[nodiscard]] int pick(const std::vector<bool>& requests);

    /// Bitmask fast path for the router hot loop (requires size <= 64):
    /// bit i set = requester i wants the resource. Identical grant sequence
    /// to pick() — the first set bit at or cyclically after the grant
    /// pointer wins and the pointer advances past it.
    [[nodiscard]] int pick_mask(std::uint64_t requests)
    {
        if (requests == 0) return -1;
        const std::uint64_t at_or_after = requests >> next_;
        const int idx = at_or_after != 0
                            ? next_ + std::countr_zero(at_or_after)
                            : std::countr_zero(requests);
        next_ = idx + 1 == size_ ? 0 : idx + 1;
        return idx;
    }

    [[nodiscard]] int size() const { return size_; }

private:
    int size_;
    int next_ = 0;
};

/// Fixed-priority arbiter: lowest index wins. Used for GT-over-BE priority
/// selection and as a baseline in fairness tests.
class Fixed_priority_arbiter {
public:
    explicit Fixed_priority_arbiter(int size);

    [[nodiscard]] int pick(const std::vector<bool>& requests) const;

    [[nodiscard]] int size() const { return size_; }

private:
    int size_;
};

} // namespace noc
