// Noc_system — instantiates a complete simulatable network from a topology,
// a route set and network parameters: one router per switch, one NI per
// core, pipelined link channels in both directions (data forward, flow
// control backward). This is the runtime half of the "NoC hardware
// compiler" (×pipesCompiler [45]): synth/ produces the Topology+Route_set,
// this class turns them into a live network.
//
// Construction is layered (the PR-5 API redesign):
//   * Build_options (arch/build_options.h) gathers the construction knobs —
//     kernel schedule, Partition_plan, partial-route policy, pool sizing —
//     in one value type that harnesses embed and forward;
//   * Noc_builder (arch/noc_builder.h) is the fluent facade most callers
//     should use: topology + routes + params + options (+ probes), then
//     build();
//   * this ctor is the primitive the builder drives; the old positional
//     (bool, shard_count) tail survives one PR as a deprecated shim.
#pragma once

#include "arch/build_options.h"
#include "arch/flit_pool.h"
#include "arch/network_stats.h"
#include "arch/ni.h"
#include "arch/router.h"
#include "sim/kernel.h"
#include "topology/graph.h"
#include "topology/route.h"

#include <memory>
#include <vector>

namespace noc {

class Probe;

class Noc_system {
public:
    /// Takes ownership of the topology and routes; flits hold pointers into
    /// the route set, so it must live exactly as long as the system.
    /// `options` selects the kernel schedule, the shard partition (under
    /// Kernel_mode::sharded: switches split into contiguous id-range blocks
    /// by the Partition_plan, each NI following its switch, every channel
    /// registered in its single writer's shard, one flit-pool segment and
    /// stats slot per shard), the partial-route policy and the pool
    /// reserve. Results are bit-identical across schedules and partitions
    /// (the equivalence suite proves it).
    explicit Noc_system(Topology topology, Route_set routes,
                        Network_params params, Build_options options = {});

    /// Legacy positional tail, one PR only: equivalent to Build_options
    /// with {kernel_mode: shard_count > 1 ? sharded : activity_gated,
    /// partition: contiguous(shard_count), allow_partial_routes}.
    [[deprecated("pass Build_options (or use Noc_builder) instead of the "
                 "positional bool/shard_count tail")]]
    Noc_system(Topology topology, Route_set routes, Network_params params,
               bool allow_partial_routes, std::uint32_t shard_count = 1);

    Noc_system(const Noc_system&) = delete;
    Noc_system& operator=(const Noc_system&) = delete;

    [[nodiscard]] Ni& ni(Core_id c)
    {
        return *nis_.at(c.get());
    }
    [[nodiscard]] Router& router(Switch_id s)
    {
        return *routers_.at(s.get());
    }
    [[nodiscard]] const Router& router(Switch_id s) const
    {
        return *routers_.at(s.get());
    }
    [[nodiscard]] Sim_kernel& kernel() { return kernel_; }
    /// The per-system flit slab; its high_water() is the buffer-provisioning
    /// cost of the run (see arch/flit_pool.h).
    [[nodiscard]] const Flit_pool& flit_pool() const { return pool_; }
    [[nodiscard]] Network_stats& stats() { return stats_; }
    [[nodiscard]] const Network_stats& stats() const { return stats_; }
    [[nodiscard]] const Topology& topology() const { return topology_; }
    [[nodiscard]] const Route_set& routes() const { return routes_; }
    [[nodiscard]] const Network_params& params() const { return params_; }

    // --- shard partition (sharded kernel; see ctor comment) -----------------
    [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }
    [[nodiscard]] std::uint32_t shard_of_switch(Switch_id s) const
    {
        return switch_shard_[s.get()];
    }
    [[nodiscard]] std::uint32_t shard_of_core(Core_id c) const
    {
        return shard_of_switch(topology_.core_switch(c));
    }

    // --- observability probes (arch/probe.h) --------------------------------
    /// Attach `probe` to every router's crossbar-traversal hook (nullptr
    /// detaches). Non-owning: the probe must outlive the system or be
    /// detached first. Calls probe->bind(shard_count()) so per-shard probe
    /// state (Trace_probe's rings) is sized before the first hop; call only
    /// between kernel runs.
    void attach_probe(Probe* probe);

    /// Per-switch flits_routed counters — the profile a
    /// Partition_plan::balanced plan for a NEXT build of the same design
    /// wants as weights. Read between runs.
    [[nodiscard]] std::vector<std::uint64_t> switch_load_profile() const;

    // --- measurement protocol ----------------------------------------------
    void warmup(Cycle cycles);
    /// Opens the measurement window and runs through it.
    void measure(Cycle cycles);
    /// Runs until every measured packet is delivered; false on timeout.
    bool drain(Cycle max_cycles);

    // --- activity (power models, utilization reports) ------------------------
    /// Flits that traversed `link` so far.
    [[nodiscard]] std::uint64_t link_flits(Link_id l) const;
    [[nodiscard]] std::uint64_t total_router_buffer_writes() const;
    [[nodiscard]] std::uint64_t total_router_buffer_reads() const;
    [[nodiscard]] std::uint64_t total_flits_routed() const;

private:
    /// Bundles the legacy shim's arguments so the delegating ctor can
    /// clamp shard_count against the topology BEFORE it is moved (the
    /// legacy schedule choice keyed on the clamped count). Defined in
    /// noc_system.cpp; dies with the shim.
    struct Legacy_init;
    explicit Noc_system(Legacy_init init);

    Topology topology_;
    Route_set routes_;
    Network_params params_;
    std::uint32_t shard_count_ = 1;
    /// Per-switch shard ids resolved from the Partition_plan (contiguous
    /// blocks; see arch/partition_plan.h).
    std::vector<std::uint32_t> switch_shard_;
    Network_stats stats_;
    Sim_kernel kernel_;
    /// Declared before routers/NIs: they hold handles into it and release
    /// slots only through explicit calls, never from destructors, but the
    /// slab must still outlive every component that can dereference it.
    Flit_pool pool_;

    std::vector<std::unique_ptr<Flit_channel>> link_data_;
    std::vector<std::unique_ptr<Token_channel>> link_tokens_;
    std::vector<std::unique_ptr<Flit_channel>> inject_data_;
    std::vector<std::unique_ptr<Token_channel>> inject_tokens_;
    std::vector<std::unique_ptr<Flit_channel>> eject_data_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Ni>> nis_;
};

} // namespace noc
