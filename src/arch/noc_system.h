// Noc_system — instantiates a complete simulatable network from a topology,
// a route set and network parameters: one router per switch, one NI per
// core, pipelined link channels in both directions (data forward, flow
// control backward). This is the runtime half of the "NoC hardware
// compiler" (×pipesCompiler [45]): synth/ produces the Topology+Route_set,
// this class turns them into a live network.
//
// Construction is layered (the PR-5 API redesign):
//   * Build_options (arch/build_options.h) gathers the construction knobs —
//     kernel schedule, Partition_plan, partial-route policy, pool sizing —
//     in one value type that harnesses embed and forward;
//   * Noc_builder (arch/noc_builder.h) is the fluent facade most callers
//     should use: topology + routes + params + options (+ probes), then
//     build();
//   * this ctor is the primitive the builder drives.
//
// Fault injection (arch/fault_plan.h): when Build_options::fault_plan is
// set, the measurement protocol (warmup/measure/drain) runs the kernel in
// chunks split at the plan's event cycles and applies faults at the
// resulting sequential points — transient flit corruption, permanent link
// kills with an in-flight purge, and an online reroute that rewrites the
// NI route LUTs mid-run. All fault mutation happens on the caller thread
// between kernel runs, so results stay bit-identical across kernel
// schedules and shard counts, and the sharded schedule needs no extra
// synchronization (run() boundaries are its natural reconfiguration
// points; see the threading-model notes in sim/kernel.h).
#pragma once

#include "arch/build_options.h"
#include "arch/fault_plan.h"
#include "arch/flit_pool.h"
#include "arch/network_stats.h"
#include "arch/ni.h"
#include "arch/router.h"
#include "sim/kernel.h"
#include "topology/graph.h"
#include "topology/multicast.h"
#include "topology/route.h"

#include <memory>
#include <set>
#include <vector>

namespace noc {

class Probe;
class Telemetry_registry;
class Telemetry_sampler;

class Noc_system {
public:
    /// Takes ownership of the topology and routes; flits hold pointers into
    /// the route set, so it must live exactly as long as the system.
    /// `options` selects the kernel schedule, the shard partition (under
    /// Kernel_mode::sharded: switches split into contiguous id-range blocks
    /// by the Partition_plan, each NI following its switch, every channel
    /// registered in its single writer's shard, one flit-pool segment and
    /// stats slot per shard), the partial-route policy and the pool
    /// reserve. Results are bit-identical across schedules and partitions
    /// (the equivalence suite proves it).
    explicit Noc_system(Topology topology, Route_set routes,
                        Network_params params, Build_options options = {});

    Noc_system(const Noc_system&) = delete;
    Noc_system& operator=(const Noc_system&) = delete;

    [[nodiscard]] Ni& ni(Core_id c)
    {
        return *nis_.at(c.get());
    }
    [[nodiscard]] Router& router(Switch_id s)
    {
        return *routers_.at(s.get());
    }
    [[nodiscard]] const Router& router(Switch_id s) const
    {
        return *routers_.at(s.get());
    }
    [[nodiscard]] Sim_kernel& kernel() { return kernel_; }
    /// The per-system flit slab; its high_water() is the buffer-provisioning
    /// cost of the run (see arch/flit_pool.h).
    [[nodiscard]] const Flit_pool& flit_pool() const { return pool_; }
    [[nodiscard]] Network_stats& stats() { return stats_; }
    [[nodiscard]] const Network_stats& stats() const { return stats_; }
    [[nodiscard]] const Topology& topology() const { return topology_; }
    [[nodiscard]] const Route_set& routes() const { return routes_; }
    [[nodiscard]] const Network_params& params() const { return params_; }

    // --- multicast / collective traffic (topology/multicast.h) --------------
    /// Install destination-set trees and hand them to every NI. Takes
    /// ownership — multicast flits hold pointers into the trees, so the
    /// set must live exactly as long as the system (like the unicast
    /// Route_set). Every tree is validated against the topology up front,
    /// mirroring the ctor's unicast route validation. Sequential points
    /// only; does not compose with fault plans (the purge/reroute
    /// machinery does not understand branched worms) and throws if one is
    /// installed.
    void set_mcast_routes(Mcast_route_set mroutes);
    /// The installed trees (nullptr until set_mcast_routes).
    [[nodiscard]] const Mcast_route_set* mcast_routes() const
    {
        return mcast_routes_.get();
    }

    // --- shard partition (sharded kernel; see ctor comment) -----------------
    [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }
    [[nodiscard]] std::uint32_t shard_of_switch(Switch_id s) const
    {
        return switch_shard_[s.get()];
    }
    [[nodiscard]] std::uint32_t shard_of_core(Core_id c) const
    {
        return shard_of_switch(topology_.core_switch(c));
    }

    // --- observability probes (arch/probe.h) --------------------------------
    /// Attach `probe` to every router's crossbar-traversal hook (nullptr
    /// detaches). Non-owning: the probe must outlive the system or be
    /// detached first. Calls probe->bind(shard_count()) so per-shard probe
    /// state (Trace_probe's rings) is sized before the first hop; call only
    /// between kernel runs.
    void attach_probe(Probe* probe);

    /// Per-switch flits_routed counters — the profile a
    /// Partition_plan::balanced plan for a NEXT build of the same design
    /// wants as weights. Read between runs.
    [[nodiscard]] std::vector<std::uint64_t> switch_load_profile() const;

    // --- live telemetry (telemetry/registry.h, telemetry/sampler.h) ---------
    /// Register this system's full metric surface into `registry`:
    /// per-link channel occupancy + transfer counts, per-NI
    /// injection/ejection/queued/replay, per-router routed/occupancy/
    /// blocked, kernel scheduling counters and flit-pool liveness. Entries
    /// are read-functions over counters the components maintain anyway, so
    /// attaching telemetry costs nothing on the hot path and cannot
    /// perturb results (the registry's determinism contract). The registry
    /// captures only at sequential points; it must not outlive the system.
    void attach_telemetry(Telemetry_registry& registry) const;

    /// Attach an async sampler (nullptr detaches): the measurement
    /// protocol splits its kernel runs at the sampler's next_sample_at()
    /// cycles and calls sample() there, on this thread. The splits happen
    /// strictly INSIDE fault chunks, so they never add fault-engine
    /// sequential points — sampled runs stay bit-identical to unsampled
    /// ones. Unattached systems pay one predictable branch per run chunk.
    void attach_sampler(Telemetry_sampler* sampler)
    {
        sampler_ = sampler;
    }

    /// Link-channel queue depth (pending + in-flight values). Sequential
    /// points only.
    [[nodiscard]] std::uint32_t link_occupancy(Link_id l) const;

    // --- measurement protocol ----------------------------------------------
    // With a fault plan installed these run the kernel in chunks split at
    // the plan's event cycles (see the header comment).
    void warmup(Cycle cycles);
    /// Opens the measurement window and runs through it.
    void measure(Cycle cycles);
    /// Chunked measurement (live saturation early-stop,
    /// traffic/experiment.h): open the window for `cycles` without running,
    /// then advance() in chunks inspecting stats between them, and
    /// optionally close_measurement() before the window's scheduled end so
    /// rate denominators use the cycles actually measured. measure(c) ==
    /// open_measurement(c) + advance(c).
    void open_measurement(Cycle cycles);
    /// Run `cycles` under the fault protocol (no window change).
    void advance(Cycle cycles);
    /// Truncate the measurement window at the current cycle.
    void close_measurement();
    /// Runs until every measured packet is delivered or dropped; false on
    /// timeout. Dropped and unreachable packets count as accounted for, so
    /// a faulted run drains instead of hanging.
    bool drain(Cycle max_cycles);

    // --- fault injection / online reconfiguration (arch/fault_plan.h) -------
    [[nodiscard]] const Fault_plan* fault_plan() const
    {
        return fault_plan_.get();
    }
    /// Links permanently failed so far.
    [[nodiscard]] const std::set<Link_id>& failed_links() const
    {
        return failed_links_;
    }
    /// Switches dead so far (router deaths / region power-offs).
    [[nodiscard]] const std::set<Switch_id>& dead_switches() const
    {
        return dead_switches_;
    }
    /// (src, dst) pairs with no surviving route after the last reroute.
    [[nodiscard]] const std::vector<std::pair<Core_id, Core_id>>&
    unreachable_pairs() const
    {
        return unreachable_pairs_;
    }
    /// True between a permanent failure and its reroute completion
    /// (injection is paused network-wide in that window). Under
    /// Recovery_mode::epoch, completion happens at failure +
    /// reroute_latency exactly whenever the union deadlock check admits a
    /// live switchover (old-epoch packets finish on their old routes while
    /// new injections take the failure-aware ones); when the union has a
    /// cycle — or under Recovery_mode::drain — completion additionally
    /// waits for the network to empty, so time_to_recover is latency +
    /// drain time on that path. Either way the switchover cycle is
    /// schedule-invariant (pool occupancy and the union verdict are both
    /// deterministic at sequential points).
    [[nodiscard]] bool reroute_pending() const
    {
        return reroute_at_ != invalid_cycle;
    }
    /// The route LUT the NIs currently inject with: the original set until
    /// a reroute, then the latest reroute epoch. Retired epochs stay alive
    /// for the lifetime of the system (in-flight packets hold pointers
    /// into them).
    [[nodiscard]] const Route_set& current_routes() const
    {
        return reroute_epochs_.empty() ? routes_ : *reroute_epochs_.back();
    }
    /// Route epochs published so far (0 before the first reroute). The
    /// flits of packets injected under epoch e carry Flit::route_epoch ==
    /// e, so probes can watch epochs mix during a live switchover.
    [[nodiscard]] std::size_t route_epoch() const
    {
        return reroute_epochs_.size();
    }

    // --- activity (power models, utilization reports) ------------------------
    /// Flits that traversed `link` so far.
    [[nodiscard]] std::uint64_t link_flits(Link_id l) const;
    [[nodiscard]] std::uint64_t total_router_buffer_writes() const;
    [[nodiscard]] std::uint64_t total_router_buffer_reads() const;
    [[nodiscard]] std::uint64_t total_flits_routed() const;

private:
    // --- fault engine (noc_system.cpp; sequential points only) --------------
    /// Run `cycles` kernel cycles, splitting at fault-plan event cycles.
    void run_with_faults(Cycle cycles);
    /// Innermost run: split at sampler cycles (when attached), WITHOUT
    /// servicing fault events — the fault cadence stays bare, so sampling
    /// cannot move a reroute completion (see attach_sampler).
    void run_plain(Cycle cycles);
    /// Apply every fault event due at or before kernel_.now().
    void service_fault_events();
    /// Earliest of `limit`, the next pending fault cycle and a pending
    /// reroute completion (all strictly after now).
    [[nodiscard]] Cycle next_fault_stop(Cycle limit) const;
    void apply_transient(const Transient_fault& fault);
    void apply_permanent(const Permanent_fault& fault);
    /// Recompute failure-aware routes and, when the union CDG of every
    /// route function still in flight plus the candidate is acyclic,
    /// publish them immediately (live switchover). False = union cyclic.
    bool try_live_switchover();
    /// Drain-path completion (pool empty): recompute and publish.
    void complete_reroute();
    /// Common publication tail: install `routes` as the next epoch,
    /// rebind/unpause NIs, close the recovery record.
    void publish_reroute(Route_set routes,
                         std::vector<std::pair<Core_id, Core_id>> unreachable,
                         bool live);
    /// End-to-end ACK sweep (Fault_plan::replay): route every delivered
    /// pid back to its source NI and retire the replay record.
    void collect_acks();
    /// Re-sync sender-owned counters (retransmissions) into stats_.
    void sync_fault_counters();
    /// Re-sync router-owned multicast fork/copy counters into stats_
    /// (absolute totals, mirroring sync_fault_counters). No-op until
    /// set_mcast_routes.
    void sync_multicast_counters();
    void wake_everything();

    Topology topology_;
    Route_set routes_;
    Network_params params_;
    /// Destination-set trees (set_mcast_routes; null = no multicast).
    /// unique_ptr so tree addresses stay stable for in-flight flits.
    std::unique_ptr<Mcast_route_set> mcast_routes_;
    std::uint32_t shard_count_ = 1;
    /// Per-switch shard ids resolved from the Partition_plan (contiguous
    /// blocks; see arch/partition_plan.h).
    std::vector<std::uint32_t> switch_shard_;
    Network_stats stats_;
    Sim_kernel kernel_;
    /// Declared before routers/NIs: they hold handles into it and release
    /// slots only through explicit calls, never from destructors, but the
    /// slab must still outlive every component that can dereference it.
    Flit_pool pool_;

    std::vector<std::unique_ptr<Flit_channel>> link_data_;
    std::vector<std::unique_ptr<Token_channel>> link_tokens_;
    std::vector<std::unique_ptr<Flit_channel>> inject_data_;
    std::vector<std::unique_ptr<Token_channel>> inject_tokens_;
    std::vector<std::unique_ptr<Flit_channel>> eject_data_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Ni>> nis_;

    // --- fault-engine state (null/empty on fault-free systems) --------------
    std::shared_ptr<const Fault_plan> fault_plan_;
    /// Plan events sorted by cycle, consumed front-to-back.
    std::vector<Transient_fault> transients_;
    std::vector<Permanent_fault> permanents_;
    std::size_t next_transient_ = 0;
    std::size_t next_permanent_ = 0;
    std::set<Link_id> failed_links_;
    std::set<Switch_id> dead_switches_;
    /// Cycle a pending reroute completes at (invalid_cycle = none).
    Cycle reroute_at_ = invalid_cycle;
    /// Epoch mode: the union check refused a live switchover for the
    /// pending reroute, so it waits for the drain path (reset by any new
    /// failure, whose purge may change the verdict).
    bool await_drain_ = false;
    /// Route sets that may still have packets in flight (the union the
    /// live-switchover check runs over). Trimmed back to the current set
    /// whenever the pool is observed empty at a sequential point — a
    /// schedule-invariant observation.
    std::vector<const Route_set*> live_epochs_;
    /// In-progress recovery record, finished at reroute completion.
    Network_stats::Recovery_record pending_recovery_;
    /// Every reroute's Route_set, oldest first; all stay alive (see
    /// current_routes()).
    std::vector<std::unique_ptr<Route_set>> reroute_epochs_;
    std::vector<std::pair<Core_id, Core_id>> unreachable_pairs_;
    /// The attached probe (also receives on_fault_event).
    Probe* probe_ = nullptr;
    /// The attached telemetry sampler (null = no sampling splits).
    Telemetry_sampler* sampler_ = nullptr;
};

} // namespace noc
