// Noc_system — instantiates a complete simulatable network from a topology,
// a route set and network parameters: one router per switch, one NI per
// core, pipelined link channels in both directions (data forward, flow
// control backward). This is the runtime half of the "NoC hardware
// compiler" (×pipesCompiler [45]): synth/ produces the Topology+Route_set,
// this class turns them into a live network.
#pragma once

#include "arch/flit_pool.h"
#include "arch/network_stats.h"
#include "arch/ni.h"
#include "arch/router.h"
#include "sim/kernel.h"
#include "topology/graph.h"
#include "topology/route.h"

#include <memory>
#include <vector>

namespace noc {

class Noc_system {
public:
    /// Takes ownership of the topology and routes; flits hold pointers into
    /// the route set, so it must live exactly as long as the system.
    /// `allow_partial_routes` permits empty entries for core pairs that
    /// never communicate (synthesized designs route only the application's
    /// flows); sending on a missing route still fails fast in the NI.
    ///
    /// `shard_count` > 1 builds the system for the sharded (multi-threaded)
    /// kernel schedule: switches are partitioned into `shard_count`
    /// contiguous id-range blocks (spatially contiguous row bands on the
    /// row-major meshes), each NI follows its switch, every channel is
    /// registered in its single writer's shard, each shard gets its own
    /// flit-pool free-list segment and stats slot, and the kernel starts in
    /// Kernel_mode::sharded. Results are bit-identical to the sequential
    /// schedules for any shard count (the equivalence suite proves it).
    /// The count is clamped to the switch count.
    Noc_system(Topology topology, Route_set routes, Network_params params,
               bool allow_partial_routes = false,
               std::uint32_t shard_count = 1);

    Noc_system(const Noc_system&) = delete;
    Noc_system& operator=(const Noc_system&) = delete;

    [[nodiscard]] Ni& ni(Core_id c)
    {
        return *nis_.at(c.get());
    }
    [[nodiscard]] Router& router(Switch_id s)
    {
        return *routers_.at(s.get());
    }
    [[nodiscard]] const Router& router(Switch_id s) const
    {
        return *routers_.at(s.get());
    }
    [[nodiscard]] Sim_kernel& kernel() { return kernel_; }
    /// The per-system flit slab; its high_water() is the buffer-provisioning
    /// cost of the run (see arch/flit_pool.h).
    [[nodiscard]] const Flit_pool& flit_pool() const { return pool_; }
    [[nodiscard]] Network_stats& stats() { return stats_; }
    [[nodiscard]] const Network_stats& stats() const { return stats_; }
    [[nodiscard]] const Topology& topology() const { return topology_; }
    [[nodiscard]] const Route_set& routes() const { return routes_; }
    [[nodiscard]] const Network_params& params() const { return params_; }

    // --- shard partition (sharded kernel; see ctor comment) -----------------
    [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }
    [[nodiscard]] std::uint32_t shard_of_switch(Switch_id s) const
    {
        return static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(s.get()) * shard_count_ /
            static_cast<std::uint64_t>(topology_.switch_count()));
    }
    [[nodiscard]] std::uint32_t shard_of_core(Core_id c) const
    {
        return shard_of_switch(topology_.core_switch(c));
    }

    // --- measurement protocol ----------------------------------------------
    void warmup(Cycle cycles);
    /// Opens the measurement window and runs through it.
    void measure(Cycle cycles);
    /// Runs until every measured packet is delivered; false on timeout.
    bool drain(Cycle max_cycles);

    // --- activity (power models, utilization reports) ------------------------
    /// Flits that traversed `link` so far.
    [[nodiscard]] std::uint64_t link_flits(Link_id l) const;
    [[nodiscard]] std::uint64_t total_router_buffer_writes() const;
    [[nodiscard]] std::uint64_t total_router_buffer_reads() const;
    [[nodiscard]] std::uint64_t total_flits_routed() const;

private:
    Topology topology_;
    Route_set routes_;
    Network_params params_;
    std::uint32_t shard_count_ = 1;
    Network_stats stats_;
    Sim_kernel kernel_;
    /// Declared before routers/NIs: they hold handles into it and release
    /// slots only through explicit calls, never from destructors, but the
    /// slab must still outlive every component that can dereference it.
    Flit_pool pool_;

    std::vector<std::unique_ptr<Flit_channel>> link_data_;
    std::vector<std::unique_ptr<Token_channel>> link_tokens_;
    std::vector<std::unique_ptr<Flit_channel>> inject_data_;
    std::vector<std::unique_ptr<Token_channel>> inject_tokens_;
    std::vector<std::unique_ptr<Flit_channel>> eject_data_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Ni>> nis_;
};

} // namespace noc
