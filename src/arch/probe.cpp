#include "arch/probe.h"

#include <algorithm>
#include <bit>

namespace noc {

namespace {

const char* fault_kind_name(Fault_event::Kind k)
{
    switch (k) {
    case Fault_event::Kind::transient_injected: return "transient_injected";
    case Fault_event::Kind::link_failed: return "link_failed";
    case Fault_event::Kind::router_failed: return "router_failed";
    case Fault_event::Kind::region_failed: return "region_failed";
    case Fault_event::Kind::rerouted: return "rerouted";
    case Fault_event::Kind::packet_replayed: return "packet_replayed";
    }
    return "unknown";
}

} // namespace

Trace_probe::Trace_probe(std::uint32_t capacity_per_shard)
{
    // Clamp to [16, 2^24] before rounding: bit_ceil above 2^31 is UB, and
    // a flight recorder past 16M records per shard (64 MiB of handles) is
    // a misconfiguration, not a use case.
    const std::uint32_t wanted =
        std::min(std::max(capacity_per_shard, 16u), 1u << 24);
    const std::uint32_t cap = std::bit_ceil(wanted);
    mask_ = cap - 1;
    rings_.resize(1);
    rings_[0].records.assign(cap, Flit_ref{});
}

void Trace_probe::bind(std::uint32_t shard_count)
{
    if (shard_count == 0) shard_count = 1;
    rings_ = std::vector<Ring>(shard_count);
    for (auto& r : rings_)
        r.records.assign(static_cast<std::size_t>(mask_) + 1, Flit_ref{});
}

std::uint64_t Trace_probe::total_recorded() const
{
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r.count;
    return n;
}

std::vector<Flit_ref> Trace_probe::recent(std::uint32_t s) const
{
    const Ring& r = rings_.at(s);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t kept = r.count < cap ? r.count : cap;
    std::vector<Flit_ref> out;
    out.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = r.count - kept; i < r.count; ++i)
        out.push_back(r.records[static_cast<std::size_t>(i & mask_)]);
    return out;
}

std::string Trace_probe::dump(const Flit_pool& pool) const
{
    std::string out;
    for (std::uint32_t s = 0; s < shard_count(); ++s) {
        out += "shard " + std::to_string(s) + ": " +
               std::to_string(recorded(s)) + " hops recorded\n";
        for (const Flit_ref ref : recent(s)) {
            if (!ref.is_valid() || ref.index >= pool.capacity()) continue;
#ifdef NOC_DEBUG
            // Debug builds track liveness; skip records whose flit has been
            // delivered and released since (the handle would resolve to a
            // recycled slot — see the header-comment caveat).
            if (!pool.is_live(ref)) continue;
#endif
            const Flit& f = pool[ref];
            out += "  flit#" + std::to_string(ref.index) + " pkt" +
                   std::to_string(f.packet.get()) + " " +
                   std::to_string(f.src.get()) + "->" +
                   std::to_string(f.dst.get()) + " idx " +
                   std::to_string(f.index) + "/" +
                   std::to_string(f.packet_size) + " hop " +
                   std::to_string(f.route_index) + "\n";
        }
    }
    if (!fault_events_.empty()) {
        out += "fault events: " + std::to_string(fault_events_.size()) +
               "\n";
        for (const Fault_event& e : fault_events_) {
            out += "  @" + std::to_string(e.at) + " " +
                   fault_kind_name(e.kind);
            if (!e.links.empty())
                out += " links=" + std::to_string(e.links.size());
            if (!e.switches.empty()) {
                out += " switches=";
                for (std::size_t i = 0; i < e.switches.size(); ++i)
                    out += (i ? "," : "") +
                           std::to_string(e.switches[i].get());
            }
            if (e.packets_dropped)
                out += " dropped=" + std::to_string(e.packets_dropped);
            if (e.packets_replayed)
                out += " replayed=" + std::to_string(e.packets_replayed);
            if (e.unreachable_pairs)
                out += " unreachable_pairs=" +
                       std::to_string(e.unreachable_pairs);
            out += "\n";
        }
    }
    return out;
}

void Trace_probe::clear()
{
    for (auto& r : rings_) {
        r.count = 0;
        for (auto& rec : r.records) rec = Flit_ref{};
    }
    fault_events_.clear();
}

} // namespace noc
