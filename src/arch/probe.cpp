#include "arch/probe.h"

#include <algorithm>
#include <bit>

namespace noc {

namespace {

const char* fault_kind_name(Fault_event::Kind k)
{
    switch (k) {
    case Fault_event::Kind::transient_injected: return "transient_injected";
    case Fault_event::Kind::link_failed: return "link_failed";
    case Fault_event::Kind::router_failed: return "router_failed";
    case Fault_event::Kind::region_failed: return "region_failed";
    case Fault_event::Kind::rerouted: return "rerouted";
    case Fault_event::Kind::packet_replayed: return "packet_replayed";
    }
    return "unknown";
}

} // namespace

Trace_probe::Trace_probe(std::uint32_t capacity_per_shard)
{
    // Clamp to [16, 2^24] before rounding: bit_ceil above 2^31 is UB, and
    // a flight recorder past 16M records per shard (256 MiB of Hops) is a
    // misconfiguration, not a use case.
    const std::uint32_t wanted =
        std::min(std::max(capacity_per_shard, 16u), 1u << 24);
    const std::uint32_t cap = std::bit_ceil(wanted);
    mask_ = cap - 1;
    rings_.resize(1);
    rings_[0].records.assign(cap, Hop{});
}

void Trace_probe::bind(std::uint32_t shard_count)
{
    if (shard_count == 0) shard_count = 1;
    rings_ = std::vector<Ring>(shard_count);
    for (auto& r : rings_)
        r.records.assign(static_cast<std::size_t>(mask_) + 1, Hop{});
}

std::uint64_t Trace_probe::total_recorded() const
{
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r.count;
    return n;
}

std::vector<Flit_ref> Trace_probe::recent(std::uint32_t s) const
{
    std::vector<Flit_ref> out;
    for (const Hop& h : recent_hops(s)) out.push_back(h.flit);
    return out;
}

std::vector<Trace_probe::Hop> Trace_probe::recent_hops(
    std::uint32_t s) const
{
    const Ring& r = rings_.at(s);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t kept = r.count < cap ? r.count : cap;
    std::vector<Hop> out;
    out.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = r.count - kept; i < r.count; ++i)
        out.push_back(r.records[static_cast<std::size_t>(i & mask_)]);
    return out;
}

namespace {

/// One resolved record line, or empty when the handle cannot be resolved
/// (invalid, out of range, or — NOC_DEBUG only — released since; see the
/// header-comment caveat).
std::string hop_line(const Flit_pool& pool, const Trace_probe::Hop& h)
{
    if (!h.flit.is_valid() || h.flit.index >= pool.capacity()) return {};
#ifdef NOC_DEBUG
    if (!pool.is_live(h.flit)) return {};
#endif
    const Flit& f = pool[h.flit];
    std::string line = "@" + std::to_string(h.now) + " sw" +
                       std::to_string(h.sw.get()) + " flit#" +
                       std::to_string(h.flit.index) + " pkt" +
                       std::to_string(f.packet.get()) + " " +
                       std::to_string(f.src.get()) + "->" +
                       std::to_string(f.dst.get()) + " idx " +
                       std::to_string(f.index) + "/" +
                       std::to_string(f.packet_size) + " hop " +
                       std::to_string(f.route_index);
    if (h.branches > 0)
        line += " multicast_forked x" + std::to_string(h.branches);
    return line;
}

} // namespace

std::string Trace_probe::dump(const Flit_pool& pool, Dump_order order) const
{
    std::string out;
    if (order == Dump_order::cycle_merged) {
        // One global timeline: every shard's retained records, sorted by
        // cycle. Stable sort keeps shard order (then oldest-first within a
        // shard) on ties, so the bytes are deterministic for a
        // deterministic run regardless of shard count.
        std::vector<std::pair<std::uint32_t, Hop>> hops;
        for (std::uint32_t s = 0; s < shard_count(); ++s)
            for (const Hop& h : recent_hops(s)) hops.emplace_back(s, h);
        std::stable_sort(hops.begin(), hops.end(),
                         [](const auto& a, const auto& b) {
                             return a.second.now < b.second.now;
                         });
        out += "cycle-merged: " + std::to_string(total_recorded()) +
               " hops recorded, " + std::to_string(hops.size()) +
               " retained across " + std::to_string(shard_count()) +
               " shard(s)\n";
        for (const auto& [s, h] : hops) {
            const std::string line = hop_line(pool, h);
            if (!line.empty())
                out += "  " + line + " [shard " + std::to_string(s) + "]\n";
        }
    } else {
        for (std::uint32_t s = 0; s < shard_count(); ++s) {
            out += "shard " + std::to_string(s) + ": " +
                   std::to_string(recorded(s)) + " hops recorded\n";
            for (const Hop& h : recent_hops(s)) {
                const std::string line = hop_line(pool, h);
                if (!line.empty()) out += "  " + line + "\n";
            }
        }
    }
    if (!fault_events_.empty()) {
        out += "fault events: " + std::to_string(fault_events_.size()) +
               "\n";
        for (const Fault_event& e : fault_events_) {
            out += "  @" + std::to_string(e.at) + " " +
                   fault_kind_name(e.kind);
            if (!e.links.empty())
                out += " links=" + std::to_string(e.links.size());
            if (!e.switches.empty()) {
                out += " switches=";
                for (std::size_t i = 0; i < e.switches.size(); ++i)
                    out += (i ? "," : "") +
                           std::to_string(e.switches[i].get());
            }
            if (e.packets_dropped)
                out += " dropped=" + std::to_string(e.packets_dropped);
            if (e.packets_replayed)
                out += " replayed=" + std::to_string(e.packets_replayed);
            if (e.unreachable_pairs)
                out += " unreachable_pairs=" +
                       std::to_string(e.unreachable_pairs);
            out += "\n";
        }
    }
    return out;
}

void Trace_probe::clear()
{
    for (auto& r : rings_) {
        r.count = 0;
        for (auto& rec : r.records) rec = Hop{};
    }
    fault_events_.clear();
}

} // namespace noc
