// Sender-side link-level flow control, shared by router outputs and NI
// injection ports.
//
// Three schemes (§3):
//   credit   — counter per VC, decremented on send, replenished by tokens;
//   on_off   — downstream broadcasts a per-VC stop mask; the sender uses the
//              last mask received (the downstream margin covers flits that
//              are in flight when the mask flips);
//   ack_nack — ×pipes-style: flits are transmitted speculatively and kept in
//              an output (retransmission) buffer until acknowledged;
//              a NACK rewinds the send pointer (go-back-N). This is the
//              scheme that "requires output buffers" in the paper.
#pragma once

#include "arch/channel.h"
#include "arch/flit.h"
#include "arch/params.h"

#include <deque>

namespace noc {

using Flit_channel = Pipeline_channel<Flit>;
using Token_channel = Pipeline_channel<Fc_token>;

/// Registers itself as the token channel's push sink: credits, masks and
/// ACK/NACKs are folded into sender state at the commit that makes them
/// visible, identically under both kernel schedules, so a token arrival
/// never needs to wake the owning component just to be read. (A sender
/// whose state demands action — an ACK/NACK retransmission backlog — keeps
/// its owner awake via is_quiescent(); everything else is passive until the
/// owner has flits to push.)
class Link_sender final : public Value_sink<Fc_token> {
public:
    /// `tokens` may be null only for ejection ports (no flow control).
    Link_sender(const Network_params& params, Flit_channel* data,
                Token_channel* tokens, bool is_ejection);

    Link_sender(const Link_sender&) = delete;
    Link_sender& operator=(const Link_sender&) = delete;
    Link_sender(Link_sender&& other) noexcept;
    Link_sender& operator=(Link_sender&&) = delete;

    /// Phase 1 entry: arm for this cycle's sends (token consumption happens
    /// in deliver(), at channel-commit time).
    void begin_cycle() { sent_this_cycle_ = false; }

    /// Value_sink: fold one reverse-channel token into sender state.
    void deliver(const Fc_token& token) override;

    /// May a flit be sent on effective VC `vc` this cycle? At most one
    /// send() per cycle overall.
    [[nodiscard]] bool can_send(int vc) const;

    /// Commit a flit (f.vc must already be the effective VC).
    void send(Flit f);

    /// Phase-1 exit for ACK/NACK: transmit (or retransmit) one buffered
    /// flit. No-op for other schemes (inline test, out-of-line work).
    void end_cycle()
    {
        if (ejection_ || fc_ != Flow_control_kind::ack_nack) return;
        transmit_from_window();
    }

    /// Sleep hook for the owning component: true when this sender needs no
    /// further cycles on its own — credit/ON/OFF state is passive between
    /// tokens (token arrivals wake the owner through the token channel), so
    /// only an ACK/NACK retransmission backlog keeps a sender busy.
    [[nodiscard]] bool is_quiescent() const { return retransmit_.empty(); }

    [[nodiscard]] bool is_ejection() const { return ejection_; }
    [[nodiscard]] int credits(int vc) const;
    /// Flits sitting in the retransmission buffer (ACK/NACK only).
    [[nodiscard]] std::size_t output_buffer_occupancy() const
    {
        return retransmit_.size();
    }
    [[nodiscard]] std::uint64_t retransmissions() const
    {
        return retransmissions_;
    }
    [[nodiscard]] std::uint64_t flits_sent() const { return flits_sent_; }

private:
    void transmit_from_window();

    Flow_control_kind fc_;
    bool ejection_;
    Flit_channel* data_;
    Token_channel* tokens_;
    std::vector<int> credits_;      // credit scheme, per VC
    std::uint32_t stop_mask_ = 0;   // on_off scheme
    // --- ack_nack sender state ---
    std::deque<Flit> retransmit_;
    std::size_t window_;
    std::uint32_t base_seq_ = 0; // seq of retransmit_.front()
    std::uint32_t next_seq_ = 0; // next fresh sequence number
    std::size_t send_idx_ = 0;   // next flit (index into retransmit_) to put
                                 // on the wire
    bool sent_this_cycle_ = false;
    std::uint32_t wire_mark_ = 0; // highest seq ever transmitted
    bool wire_mark_valid_ = false;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t flits_sent_ = 0;
};

} // namespace noc
