// Sender-side link-level flow control, shared by router outputs and NI
// injection ports.
//
// Three schemes (§3):
//   credit   — counter per VC, decremented on send, replenished by tokens;
//   on_off   — downstream broadcasts a per-VC stop mask; the sender uses the
//              last mask received (the downstream margin covers flits that
//              are in flight when the mask flips);
//   ack_nack — ×pipes-style: flits are transmitted speculatively and kept in
//              an output (retransmission) buffer until acknowledged;
//              a NACK rewinds the send pointer (go-back-N). This is the
//              scheme that "requires output buffers" in the paper.
//
// Flits are pooled (arch/flit_pool.h): send() takes a Flit_ref. Credit and
// ON/OFF senders pass ownership straight onto the wire; the ACK/NACK sender
// moves ownership into its retransmission ring and each transmission puts
// an owned COPY of the window slot on the wire (never a borrow — go-back-N
// duplicates can still be in flight when the ACK recycles the window slot).
// The receiver keeps accepts and releases drops; the sender releases window
// slots as the cumulative ACK retires them (see arch/flit.h).
#pragma once

#include "arch/channel.h"
#include "arch/flit.h"
#include "arch/flit_pool.h"
#include "arch/params.h"
#include "arch/ring_fifo.h"

namespace noc {

using Flit_channel = Pipeline_channel<Flit_ref>;
using Token_channel = Pipeline_channel<Fc_token>;

/// Registers itself as the token channel's push sink: credits, masks and
/// ACK/NACKs are folded into sender state at the commit that makes them
/// visible, identically under both kernel schedules, so a token arrival
/// never needs to wake the owning component just to be read.
///
/// Two exceptions re-arm the owning component from inside deliver():
///   * a NACK that rewinds the send pointer creates retransmission work, so
///     the owner is always woken (this is what lets ACK/NACK components
///     sleep with a fully-transmitted, not-yet-acknowledged window);
///   * while the owner is in a blocked-until-token sleep (the saturated
///     fast path: every head flit blocked on credits/masks/window space),
///     it arms wake_on_token() and any token that changes sender state
///     re-arms it. ON/OFF masks only count as a change when the mask value
///     actually differs — an active downstream router republishes the same
///     mask every cycle, and waking on those would defeat the memo.
class Link_sender final : public Value_sink<Fc_token> {
public:
    /// `tokens` may be null only for ejection ports (no flow control).
    Link_sender(const Network_params& params, Flit_pool* pool,
                Flit_channel* data, Token_channel* tokens, bool is_ejection);

    Link_sender(const Link_sender&) = delete;
    Link_sender& operator=(const Link_sender&) = delete;
    Link_sender(Link_sender&& other) noexcept;
    Link_sender& operator=(Link_sender&&) = delete;

    /// Phase 1 entry: arm for this cycle's sends (token consumption happens
    /// in deliver(), at channel-commit time). Resetting a consumed send
    /// budget is a state change: the multicast sub-phase (phase 1b) sends
    /// BEFORE unicast classification, so an allocation verdict computed the
    /// same cycle can legitimately observe sent_this_cycle_ == true and
    /// memoize "blocked" — without the bump here that memo would key on
    /// generations that never change again and a head could starve forever
    /// against a free output (a deadlock, not a slowdown).
    void begin_cycle()
    {
        if (sent_this_cycle_) {
            sent_this_cycle_ = false;
            ++state_gen_;
        }
    }

    /// Value_sink: fold one reverse-channel token into sender state.
    void deliver(const Fc_token& token) override;

    /// May a flit be sent on effective VC `vc` this cycle? At most one
    /// send() per cycle overall.
    [[nodiscard]] bool can_send(int vc) const;

    /// Commit a flit (its vc field must already be the effective VC).
    void send(Flit_ref ref);

    /// Phase-1 exit for ACK/NACK: transmit (or retransmit) one buffered
    /// flit. No-op for other schemes (inline test, out-of-line work).
    void end_cycle()
    {
        if (ejection_ || fc_ != Flow_control_kind::ack_nack) return;
        transmit_from_window();
    }

    /// Sleep hook for the owning component: true when this sender needs no
    /// further cycles on its own. Credit/ON-OFF state is passive between
    /// tokens; an ACK/NACK window whose send pointer has caught up is also
    /// passive, because the only events that create new work — a NACK
    /// rewind, or the owner queueing another flit — both re-arm the owner.
    [[nodiscard]] bool is_quiescent() const
    {
        return send_idx_ >= retransmit_.size();
    }

    /// Saturated fast path: the component that owns this sender, re-armed
    /// by deliver() per the rules in the class comment. Wired once at
    /// construction time by Router / Ni.
    void set_wake_target(Component* owner) { wake_target_ = owner; }
    /// Armed by the owner when it enters a blocked-until-token sleep;
    /// re-evaluated (typically disarmed) on its next step.
    void set_wake_on_token(bool armed) { wake_on_token_ = armed; }

    [[nodiscard]] bool is_ejection() const { return ejection_; }

    /// Monotonic counter bumped on every event that can change a future
    /// can_send() verdict: a send (credit consumed / window slot filled),
    /// the one-send budget resetting at the next begin_cycle() after a
    /// send, a delivered credit, an ON/OFF mask CHANGE, a retired ACK
    /// window slot. The router's per-VC classify memo keys its cached
    /// allocation verdicts on this (see Router::classify): while the
    /// counter is unchanged, a cached verdict against this sender is still
    /// valid.
    [[nodiscard]] std::uint64_t state_gen() const { return state_gen_; }

    [[nodiscard]] int credits(int vc) const;
    /// Flits sitting in the retransmission buffer (ACK/NACK only).
    [[nodiscard]] std::size_t output_buffer_occupancy() const
    {
        return retransmit_.size();
    }
    /// Retransmission-ring activity (buffer power modelling, like the VC
    /// ring counters on the receive side).
    [[nodiscard]] std::uint64_t output_buffer_writes() const
    {
        return retransmit_.write_count();
    }
    [[nodiscard]] std::uint64_t retransmissions() const
    {
        return retransmissions_;
    }
    [[nodiscard]] std::uint64_t flits_sent() const { return flits_sent_; }

    // --- fault-injection support (arch/fault_plan.h) -----------------------
    // All of these may only be called at a sequential point between kernel
    // runs, by the fault engine in Noc_system.

    /// Permanently kill this sender (its link died). Every retransmission-
    /// window entry is handed to `on_drop(Flit_ref)` — the caller counts
    /// and releases — and can_send() is false forever after.
    template<typename Drop> void fail(Drop&& on_drop)
    {
        failed_ = true;
        while (!retransmit_.empty()) on_drop(retransmit_.pop());
        send_idx_ = 0;
        wire_mark_valid_ = false;
        ++state_gen_;
    }
    [[nodiscard]] bool failed() const { return failed_; }

    /// Visit every retransmission-window entry, oldest first.
    template<typename F> void for_each_window(F&& f) const
    {
        for (std::size_t i = 0; i < retransmit_.size(); ++i)
            f(retransmit_[i]);
    }

    /// Return one credit for a flit that was purged downstream (its normal
    /// credit return will never come). Credit scheme only.
    void restore_credit(int vc)
    {
        ++credits_[static_cast<std::size_t>(vc)];
        ++state_gen_;
    }

    /// ACK/NACK recovery on a SURVIVING link whose window lost entries to a
    /// purge. Caller must first have purged the link's data channel (wire
    /// copies) and token channel (in-flight ACK/NACKs); `receiver_seq` is
    /// the receiver's expected_seq. Window entries below `receiver_seq`
    /// were already accepted (their ACK was in flight) and retire here;
    /// entries matching `doomed(const Flit&)` go to `on_drop(Flit_ref)`;
    /// the survivors are renumbered densely from `receiver_seq` and the
    /// send pointer rewinds so all of them retransmit. Leaves sender and
    /// receiver agreeing on the sequence space with nothing in flight.
    template<typename Doomed, typename Drop>
    void reset_window(std::uint32_t receiver_seq, Doomed&& doomed,
                      Drop&& on_drop)
    {
        while (!retransmit_.empty() && base_seq_ < receiver_seq) {
            pool_->release(retransmit_.pop());
            ++base_seq_;
        }
        for (std::size_t i = 0; i < retransmit_.size();) {
            const Flit_ref ref = retransmit_[i];
            if (doomed((*pool_)[ref])) {
                on_drop(retransmit_.erase_at(i));
            } else {
                ++i;
            }
        }
        base_seq_ = receiver_seq;
        for (std::size_t i = 0; i < retransmit_.size(); ++i)
            (*pool_)[retransmit_[i]].link_seq =
                receiver_seq + static_cast<std::uint32_t>(i);
        next_seq_ = base_seq_ + static_cast<std::uint32_t>(retransmit_.size());
        send_idx_ = 0;
        // The rewound sequence space invalidates the wire high-water mark;
        // resends after a reset are undercounted rather than miscounted.
        wire_mark_valid_ = false;
        ++state_gen_;
    }

private:
    void transmit_from_window();

    Flow_control_kind fc_;
    bool ejection_;
    Flit_pool* pool_;
    Flit_channel* data_;
    Token_channel* tokens_;
    Component* wake_target_ = nullptr;
    bool wake_on_token_ = false;
    std::uint64_t state_gen_ = 0; ///< see state_gen()
    std::vector<int> credits_;      // credit scheme, per VC
    std::uint32_t stop_mask_ = 0;   // on_off scheme
    // --- ack_nack sender state ---
    /// Unacknowledged flits, oldest first; owns its handles (see flit.h).
    Ring_fifo<Flit_ref> retransmit_;
    std::uint32_t base_seq_ = 0; // seq of retransmit_.front()
    std::uint32_t next_seq_ = 0; // next fresh sequence number
    std::size_t send_idx_ = 0;   // next flit (index into retransmit_) to put
                                 // on the wire
    bool sent_this_cycle_ = false;
    bool failed_ = false; ///< link permanently dead (see fail())
    std::uint32_t wire_mark_ = 0; // highest seq ever transmitted
    bool wire_mark_valid_ = false;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t flits_sent_ = 0;
};

} // namespace noc
