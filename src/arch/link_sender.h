// Sender-side link-level flow control, shared by router outputs and NI
// injection ports.
//
// Three schemes (§3):
//   credit   — counter per VC, decremented on send, replenished by tokens;
//   on_off   — downstream broadcasts a per-VC stop mask; the sender uses the
//              last mask received (the downstream margin covers flits that
//              are in flight when the mask flips);
//   ack_nack — ×pipes-style: flits are transmitted speculatively and kept in
//              an output (retransmission) buffer until acknowledged;
//              a NACK rewinds the send pointer (go-back-N). This is the
//              scheme that "requires output buffers" in the paper.
#pragma once

#include "arch/channel.h"
#include "arch/flit.h"
#include "arch/params.h"

#include <deque>

namespace noc {

using Flit_channel = Pipeline_channel<Flit>;
using Token_channel = Pipeline_channel<Fc_token>;

class Link_sender {
public:
    /// `tokens` may be null only for ejection ports (no flow control).
    Link_sender(const Network_params& params, Flit_channel* data,
                Token_channel* tokens, bool is_ejection);

    /// Phase 1 entry: consume the reverse-channel token, if any.
    void begin_cycle();

    /// May a flit be sent on effective VC `vc` this cycle? At most one
    /// send() per cycle overall.
    [[nodiscard]] bool can_send(int vc) const;

    /// Commit a flit (f.vc must already be the effective VC).
    void send(Flit f);

    /// Phase-1 exit for ACK/NACK: transmit (or retransmit) one buffered
    /// flit. No-op for other schemes.
    void end_cycle();

    [[nodiscard]] bool is_ejection() const { return ejection_; }
    [[nodiscard]] int credits(int vc) const;
    /// Flits sitting in the retransmission buffer (ACK/NACK only).
    [[nodiscard]] std::size_t output_buffer_occupancy() const
    {
        return retransmit_.size();
    }
    [[nodiscard]] std::uint64_t retransmissions() const
    {
        return retransmissions_;
    }
    [[nodiscard]] std::uint64_t flits_sent() const { return flits_sent_; }

private:
    Flow_control_kind fc_;
    bool ejection_;
    Flit_channel* data_;
    Token_channel* tokens_;
    std::vector<int> credits_;      // credit scheme, per VC
    std::uint32_t stop_mask_ = 0;   // on_off scheme
    // --- ack_nack sender state ---
    std::deque<Flit> retransmit_;
    std::size_t window_;
    std::uint32_t base_seq_ = 0; // seq of retransmit_.front()
    std::uint32_t next_seq_ = 0; // next fresh sequence number
    std::size_t send_idx_ = 0;   // next flit (index into retransmit_) to put
                                 // on the wire
    bool sent_this_cycle_ = false;
    std::uint32_t wire_mark_ = 0; // highest seq ever transmitted
    bool wire_mark_valid_ = false;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t flits_sent_ = 0;
};

} // namespace noc
