#include "arch/ocp.h"

#include <stdexcept>

namespace noc {

namespace {

int payload_flits(std::uint32_t words, int flit_width_bits, int word_bits)
{
    const std::uint64_t bits =
        static_cast<std::uint64_t>(words) * static_cast<std::uint64_t>(word_bits);
    return static_cast<int>((bits + static_cast<std::uint64_t>(flit_width_bits) -
                             1) /
                            static_cast<std::uint64_t>(flit_width_bits));
}

} // namespace

int ocp_request_flits(const Ocp_transaction& t, int flit_width_bits,
                      int word_bits)
{
    if (flit_width_bits <= 0 || word_bits <= 0)
        throw std::invalid_argument{"ocp_request_flits: bad widths"};
    if (t.cmd == Ocp_cmd::read) return 1; // address/command header only
    return 1 + payload_flits(t.burst_words, flit_width_bits, word_bits);
}

int ocp_response_flits(const Ocp_transaction& t, int flit_width_bits,
                       int word_bits)
{
    if (flit_width_bits <= 0 || word_bits <= 0)
        throw std::invalid_argument{"ocp_response_flits: bad widths"};
    if (t.cmd == Ocp_cmd::write) return 1; // write acknowledge
    return 1 + payload_flits(t.burst_words, flit_width_bits, word_bits);
}

Ocp_master_source::Ocp_master_source(Params p)
    : p_{std::move(p)}, rng_{p_.seed}
{
    if (p_.slaves.empty())
        throw std::invalid_argument{"Ocp_master_source: no slaves"};
    if (p_.max_outstanding <= 0)
        throw std::invalid_argument{"Ocp_master_source: outstanding <= 0"};
    if (p_.min_burst_words == 0 || p_.max_burst_words < p_.min_burst_words)
        throw std::invalid_argument{"Ocp_master_source: bad burst range"};
}

std::optional<Packet_desc> Ocp_master_source::poll(Cycle now)
{
    if (outstanding_ >= p_.max_outstanding || now < next_issue_)
        return std::nullopt;

    Ocp_transaction t;
    t.cmd = rng_.next_bool(p_.read_fraction) ? Ocp_cmd::read : Ocp_cmd::write;
    t.burst_words =
        p_.min_burst_words +
        static_cast<std::uint32_t>(rng_.next_below(
            p_.max_burst_words - p_.min_burst_words + 1));
    t.addr = rng_.next_u64();

    const Core_id slave =
        p_.slaves[static_cast<std::size_t>(rng_.next_below(p_.slaves.size()))];

    Packet_desc desc;
    desc.dst = slave;
    desc.size_flits = static_cast<std::uint32_t>(
        ocp_request_flits(t, p_.flit_width_bits));
    desc.cls = Traffic_class::request;
    desc.flow = p_.flow;
    desc.reply_flits = static_cast<std::uint32_t>(
        ocp_response_flits(t, p_.flit_width_bits));

    ++outstanding_;
    ++issued_;
    next_issue_ = now + p_.think_time;
    issue_times_[slave].push_back(now);
    return desc;
}

void Ocp_master_source::notify_response(Core_id slave, Cycle now)
{
    auto it = issue_times_.find(slave);
    if (it == issue_times_.end() || it->second.empty())
        throw std::logic_error{
            "Ocp_master_source: response without outstanding request"};
    const Cycle issued_at = it->second.front();
    it->second.pop_front();
    --outstanding_;
    ++completed_;
    rtt_.add(static_cast<double>(now - issued_at));
}

} // namespace noc
