#include "arch/noc_system.h"

#include "arch/probe.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace noc {

struct Noc_system::Legacy_init {
    Topology topology;
    Route_set routes;
    Network_params params;
    Build_options options;

    Legacy_init(Topology t, Route_set r, Network_params p,
                bool allow_partial_routes, std::uint32_t shard_count)
        : topology{std::move(t)}, routes{std::move(r)}, params{p}
    {
        if (shard_count == 0)
            throw std::invalid_argument{
                "Noc_system: shard_count must be >= 1"};
        // Legacy semantics: the schedule keyed on the CLAMPED count (a
        // 4-shard request on a 1-switch topology stayed sequential), so
        // clamp against the topology before it is moved on.
        const std::uint32_t clamped = std::min(
            shard_count,
            static_cast<std::uint32_t>(
                std::max(topology.switch_count(), 1)));
        options.kernel_mode = clamped > 1 ? Kernel_mode::sharded
                                          : Kernel_mode::activity_gated;
        options.partition = Partition_plan::contiguous(shard_count);
        options.allow_partial_routes = allow_partial_routes;
    }
};

Noc_system::Noc_system(Legacy_init init)
    : Noc_system{std::move(init.topology), std::move(init.routes),
                 init.params, std::move(init.options)}
{
}

// The deprecated positional-tail shim (one PR only) delegates to the
// Build_options primitive with the exact legacy semantics.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
Noc_system::Noc_system(Topology topology, Route_set routes,
                       Network_params params, bool allow_partial_routes,
                       std::uint32_t shard_count)
    : Noc_system{Legacy_init{std::move(topology), std::move(routes), params,
                             allow_partial_routes, shard_count}}
{
}
#pragma GCC diagnostic pop

Noc_system::Noc_system(Topology topology, Route_set routes,
                       Network_params params, Build_options options)
    : topology_{std::move(topology)},
      routes_{std::move(routes)},
      params_{params},
      pool_{options.pool_reserve_flits == 0 ? Flit_pool::chunk_size
                                            : options.pool_reserve_flits}
{
    params_.validate();
    topology_.validate();
    if (routes_.core_count() != topology_.core_count())
        throw std::invalid_argument{"Noc_system: route/core count mismatch"};

    // Shard partition: the Partition_plan resolves to contiguous switch-id
    // blocks (row bands on the row-major meshes) — equal-count or
    // weight-balanced cuts, clamped to the switch count. Every channel
    // joins its single writer's shard; NIs follow their switch, so a
    // tile's NI, router and all intra-tile channels always share a shard.
    // The sequential schedules always build one shard: partition state is
    // metadata (pool segments, stats slots), never simulation state.
    // Resolve the plan only when a sharded build actually uses it — the
    // documented contract (arch/build_options.h) is that the partition is
    // ignored metadata under the sequential schedules, so e.g. a balanced
    // plan whose weights were profiled on a different design must not
    // fail a gated build.
    if (options.build_shards() <= 1) {
        switch_shard_.assign(
            static_cast<std::size_t>(topology_.switch_count()), 0);
        shard_count_ = 1;
    } else {
        switch_shard_ = options.partition.assign(
            static_cast<std::uint32_t>(topology_.switch_count()));
        shard_count_ = switch_shard_.back() + 1;
    }
    kernel_.set_shard_count(shard_count_);
    pool_.set_segment_count(shard_count_);
    stats_.ensure_slots(shard_count_);

    // Validate every route against the port map and VC budget up front —
    // a bad route would otherwise surface as a mid-simulation logic error.
    for (int s = 0; s < topology_.core_count(); ++s) {
        for (int d = 0; d < topology_.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            const Route& r = routes_.at(src, dst);
            if (r.empty()) {
                if (options.allow_partial_routes) continue;
                throw std::invalid_argument{"Noc_system: missing route"};
            }
            Switch_id sw = topology_.core_switch(src);
            for (std::size_t h = 0; h < r.size(); ++h) {
                if (static_cast<int>(r[h].out_vc) >= params_.route_vcs)
                    throw std::invalid_argument{
                        "Noc_system: route VC exceeds route_vcs"};
                if (r[h].out_port >=
                    static_cast<std::uint16_t>(
                        topology_.output_port_count(sw)))
                    throw std::invalid_argument{
                        "Noc_system: route port out of range"};
                const Link_id l = topology_.link_of_output_port(
                    sw, Port_id{r[h].out_port});
                if (!l.is_valid()) {
                    if (h + 1 != r.size())
                        throw std::invalid_argument{
                            "Noc_system: ejection before route end"};
                    break;
                }
                sw = topology_.link(l).to;
            }
        }
    }

    int max_link_latency = 1;
    for (const auto& l : topology_.links())
        max_link_latency = std::max(max_link_latency, 1 + l.pipeline_stages);
    if (params_.fc == Flow_control_kind::on_off &&
        params_.buffer_depth < 2 * max_link_latency + 2)
        throw std::invalid_argument{
            "Noc_system: ON/OFF needs buffer_depth >= 2*link_latency + 2 "
            "(round-trip margin)"};

    // Channels (flit channels carry Flit_ref handles into pool_).
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        const int latency = 1 + l.pipeline_stages;
        link_data_.push_back(std::make_unique<Flit_channel>(
            latency, "link" + std::to_string(i)));
        link_tokens_.push_back(std::make_unique<Token_channel>(
            latency, "link" + std::to_string(i) + ".fc"));
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        inject_data_.push_back(std::make_unique<Flit_channel>(
            1, "inj" + std::to_string(c)));
        inject_tokens_.push_back(std::make_unique<Token_channel>(
            1, "inj" + std::to_string(c) + ".fc"));
        eject_data_.push_back(std::make_unique<Flit_channel>(
            1, "ej" + std::to_string(c)));
    }

    // Routers, ports in the Topology numbering convention.
    for (int s = 0; s < topology_.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        std::vector<Router_input_port> ins;
        std::vector<Router_output_port> outs;
        for (const Core_id c : topology_.switch_cores(sw)) {
            ins.push_back({inject_data_[c.get()].get(),
                           inject_tokens_[c.get()].get(), 2});
            outs.push_back({eject_data_[c.get()].get(), nullptr, true});
        }
        for (const Link_id l : topology_.in_links(sw)) {
            const int latency =
                1 + topology_.link(l).pipeline_stages;
            ins.push_back({link_data_[l.get()].get(),
                           link_tokens_[l.get()].get(), 2 * latency});
        }
        for (const Link_id l : topology_.out_links(sw))
            outs.push_back({link_data_[l.get()].get(),
                            link_tokens_[l.get()].get(), false});
        routers_.push_back(std::make_unique<Router>(sw, params_, &pool_,
                                                    std::move(ins),
                                                    std::move(outs)));
    }

    // NIs.
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        nis_.push_back(std::make_unique<Ni>(
            core, params_, &pool_, &routes_, inject_data_[core.get()].get(),
            inject_tokens_[core.get()].get(), eject_data_[core.get()].get(),
            &stats_));
    }

    // Channel -> reader wake edges, so the kernel's activity gating can
    // re-arm exactly the component that observes each commit:
    //   link data       -> downstream router;
    //   injection data  -> the core's router;
    //   ejection data   -> the NI.
    // Token channels carry no wake edge: each Link_sender registers itself
    // as its token channel's push sink, so credits/masks/ACKs fold into
    // sender state at commit time without waking anything.
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        link_data_[static_cast<std::size_t>(i)]->set_reader(
            routers_[l.to.get()].get());
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const auto sw = topology_.core_switch(core).get();
        inject_data_[core.get()]->set_reader(routers_[sw].get());
        eject_data_[core.get()]->set_reader(nis_[core.get()].get());
    }

    // Registration order is irrelevant to results (two-phase kernel).
    // Components enter the scheduler; channels enter flat per-payload-type
    // groups committed with a devirtualized loop (see sim/kernel.h). Each
    // registration names its shard: components their own, channels their
    // single WRITER's (the invariant the sharded commit relies on):
    //   link data       written by the upstream router's output sender;
    //   link tokens     written by the downstream router (reverse channel);
    //   inject data     written by the core's NI;
    //   inject tokens / eject data  written by the core's router.
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const std::uint32_t shard = shard_of_core(core);
        kernel_.add(nis_[static_cast<std::size_t>(c)].get(), shard);
        nis_[static_cast<std::size_t>(c)]->set_stats_slot(
            &stats_.slot(shard));
    }
    for (int s = 0; s < topology_.switch_count(); ++s)
        kernel_.add(routers_[static_cast<std::size_t>(s)].get(),
                    shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)}));
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        kernel_.add_channel(link_data_[static_cast<std::size_t>(i)].get(),
                            shard_of_switch(l.from));
        kernel_.add_channel(link_tokens_[static_cast<std::size_t>(i)].get(),
                            shard_of_switch(l.to));
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const std::uint32_t ni_shard = shard_of_core(core);
        const std::uint32_t rt_shard =
            shard_of_switch(topology_.core_switch(core));
        kernel_.add_channel(inject_data_[core.get()].get(), ni_shard);
        kernel_.add_channel(inject_tokens_[core.get()].get(), rt_shard);
        kernel_.add_channel(eject_data_[core.get()].get(), rt_shard);
    }

    // Each shard's worker thread allocates and releases flits through its
    // own pool segment (thread-local selection; see arch/flit_pool.h).
    kernel_.set_shard_thread_init(
        [](std::uint32_t shard) { Flit_pool::set_thread_segment(shard); });

    // Every input path to every component now carries a wake edge, so
    // activity gating is sound (see sim/kernel.h), and every channel sits
    // in its writer's shard, so the sharded schedule is race-free.
    // Build_options::kernel_mode picks the starting schedule; callers can
    // still flip modes with kernel().set_mode().
    kernel_.set_mode(options.kernel_mode);
}

void Noc_system::attach_probe(Probe* probe)
{
    if (probe != nullptr) probe->bind(shard_count_);
    for (int s = 0; s < topology_.switch_count(); ++s)
        routers_[static_cast<std::size_t>(s)]->set_probe(
            probe,
            shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)}));
}

std::vector<std::uint64_t> Noc_system::switch_load_profile() const
{
    std::vector<std::uint64_t> weights;
    weights.reserve(routers_.size());
    for (const auto& r : routers_) weights.push_back(r->flits_routed());
    return weights;
}

void Noc_system::warmup(Cycle cycles)
{
    kernel_.run(cycles);
}

void Noc_system::measure(Cycle cycles)
{
    stats_.set_measurement_window(kernel_.now(), kernel_.now() + cycles);
    kernel_.run(cycles);
}

bool Noc_system::drain(Cycle max_cycles)
{
    return kernel_.run_until(
        [this] { return stats_.measured_in_flight() == 0; }, max_cycles);
}

std::uint64_t Noc_system::link_flits(Link_id l) const
{
    return link_data_.at(l.get())->transfer_count();
}

std::uint64_t Noc_system::total_router_buffer_writes() const
{
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->buffer_writes();
    return n;
}

std::uint64_t Noc_system::total_router_buffer_reads() const
{
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->buffer_reads();
    return n;
}

std::uint64_t Noc_system::total_flits_routed() const
{
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->flits_routed();
    return n;
}

} // namespace noc
