#include "arch/noc_system.h"

#include "arch/probe.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "topology/deadlock.h"
#include "topology/fault.h"
#include "topology/multicast.h"
#include "topology/routing.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace noc {

Noc_system::Noc_system(Topology topology, Route_set routes,
                       Network_params params, Build_options options)
    : topology_{std::move(topology)},
      routes_{std::move(routes)},
      params_{params},
      pool_{options.pool_reserve_flits == 0 ? Flit_pool::chunk_size
                                            : options.pool_reserve_flits}
{
    params_.validate();
    topology_.validate();
    if (routes_.core_count() != topology_.core_count())
        throw std::invalid_argument{"Noc_system: route/core count mismatch"};

    // Shard partition: the Partition_plan resolves to contiguous switch-id
    // blocks (row bands on the row-major meshes) — equal-count or
    // weight-balanced cuts, clamped to the switch count. Every channel
    // joins its single writer's shard; NIs follow their switch, so a
    // tile's NI, router and all intra-tile channels always share a shard.
    // The sequential schedules always build one shard: partition state is
    // metadata (pool segments, stats slots), never simulation state.
    // Resolve the plan only when a sharded build actually uses it — the
    // documented contract (arch/build_options.h) is that the partition is
    // ignored metadata under the sequential schedules, so e.g. a balanced
    // plan whose weights were profiled on a different design must not
    // fail a gated build.
    if (options.build_shards() <= 1) {
        switch_shard_.assign(
            static_cast<std::size_t>(topology_.switch_count()), 0);
        shard_count_ = 1;
    } else {
        switch_shard_ = options.partition.assign(
            static_cast<std::uint32_t>(topology_.switch_count()));
        shard_count_ = switch_shard_.back() + 1;
    }
    kernel_.set_shard_count(shard_count_);
    pool_.set_segment_count(shard_count_);
    stats_.ensure_slots(shard_count_);

    // Validate every route against the port map and VC budget up front —
    // a bad route would otherwise surface as a mid-simulation logic error.
    for (int s = 0; s < topology_.core_count(); ++s) {
        for (int d = 0; d < topology_.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            const Route& r = routes_.at(src, dst);
            if (r.empty()) {
                if (options.allow_partial_routes) continue;
                throw std::invalid_argument{"Noc_system: missing route"};
            }
            Switch_id sw = topology_.core_switch(src);
            for (std::size_t h = 0; h < r.size(); ++h) {
                if (static_cast<int>(r[h].out_vc) >= params_.route_vcs)
                    throw std::invalid_argument{
                        "Noc_system: route VC exceeds route_vcs"};
                if (r[h].out_port >=
                    static_cast<std::uint16_t>(
                        topology_.output_port_count(sw)))
                    throw std::invalid_argument{
                        "Noc_system: route port out of range"};
                const Link_id l = topology_.link_of_output_port(
                    sw, Port_id{r[h].out_port});
                if (!l.is_valid()) {
                    if (h + 1 != r.size())
                        throw std::invalid_argument{
                            "Noc_system: ejection before route end"};
                    break;
                }
                sw = topology_.link(l).to;
            }
        }
    }

    int max_link_latency = 1;
    for (const auto& l : topology_.links())
        max_link_latency = std::max(max_link_latency, 1 + l.pipeline_stages);
    if (params_.fc == Flow_control_kind::on_off &&
        params_.buffer_depth < 2 * max_link_latency + 2)
        throw std::invalid_argument{
            "Noc_system: ON/OFF needs buffer_depth >= 2*link_latency + 2 "
            "(round-trip margin)"};

    // Channels (flit channels carry Flit_ref handles into pool_).
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        const int latency = 1 + l.pipeline_stages;
        link_data_.push_back(std::make_unique<Flit_channel>(
            latency, "link" + std::to_string(i)));
        link_tokens_.push_back(std::make_unique<Token_channel>(
            latency, "link" + std::to_string(i) + ".fc"));
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        inject_data_.push_back(std::make_unique<Flit_channel>(
            1, "inj" + std::to_string(c)));
        inject_tokens_.push_back(std::make_unique<Token_channel>(
            1, "inj" + std::to_string(c) + ".fc"));
        eject_data_.push_back(std::make_unique<Flit_channel>(
            1, "ej" + std::to_string(c)));
    }

    // Routers, ports in the Topology numbering convention.
    for (int s = 0; s < topology_.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        std::vector<Router_input_port> ins;
        std::vector<Router_output_port> outs;
        for (const Core_id c : topology_.switch_cores(sw)) {
            ins.push_back({inject_data_[c.get()].get(),
                           inject_tokens_[c.get()].get(), 2});
            outs.push_back({eject_data_[c.get()].get(), nullptr, true});
        }
        for (const Link_id l : topology_.in_links(sw)) {
            const int latency =
                1 + topology_.link(l).pipeline_stages;
            ins.push_back({link_data_[l.get()].get(),
                           link_tokens_[l.get()].get(), 2 * latency});
        }
        for (const Link_id l : topology_.out_links(sw))
            outs.push_back({link_data_[l.get()].get(),
                            link_tokens_[l.get()].get(), false});
        routers_.push_back(std::make_unique<Router>(sw, params_, &pool_,
                                                    std::move(ins),
                                                    std::move(outs)));
    }

    // NIs.
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        nis_.push_back(std::make_unique<Ni>(
            core, params_, &pool_, &routes_, inject_data_[core.get()].get(),
            inject_tokens_[core.get()].get(), eject_data_[core.get()].get(),
            &stats_));
    }

    // Channel -> reader wake edges, so the kernel's activity gating can
    // re-arm exactly the component that observes each commit:
    //   link data       -> downstream router;
    //   injection data  -> the core's router;
    //   ejection data   -> the NI.
    // Token channels carry no wake edge: each Link_sender registers itself
    // as its token channel's push sink, so credits/masks/ACKs fold into
    // sender state at commit time without waking anything.
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        link_data_[static_cast<std::size_t>(i)]->set_reader(
            routers_[l.to.get()].get());
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const auto sw = topology_.core_switch(core).get();
        inject_data_[core.get()]->set_reader(routers_[sw].get());
        eject_data_[core.get()]->set_reader(nis_[core.get()].get());
    }

    // Registration order is irrelevant to results (two-phase kernel).
    // Components enter the scheduler; channels enter flat per-payload-type
    // groups committed with a devirtualized loop (see sim/kernel.h). Each
    // registration names its shard: components their own, channels their
    // single WRITER's (the invariant the sharded commit relies on):
    //   link data       written by the upstream router's output sender;
    //   link tokens     written by the downstream router (reverse channel);
    //   inject data     written by the core's NI;
    //   inject tokens / eject data  written by the core's router.
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const std::uint32_t shard = shard_of_core(core);
        kernel_.add(nis_[static_cast<std::size_t>(c)].get(), shard);
        nis_[static_cast<std::size_t>(c)]->set_stats_slot(
            &stats_.slot(shard));
    }
    for (int s = 0; s < topology_.switch_count(); ++s)
        kernel_.add(routers_[static_cast<std::size_t>(s)].get(),
                    shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)}));
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        kernel_.add_channel(link_data_[static_cast<std::size_t>(i)].get(),
                            shard_of_switch(l.from));
        kernel_.add_channel(link_tokens_[static_cast<std::size_t>(i)].get(),
                            shard_of_switch(l.to));
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const std::uint32_t ni_shard = shard_of_core(core);
        const std::uint32_t rt_shard =
            shard_of_switch(topology_.core_switch(core));
        kernel_.add_channel(inject_data_[core.get()].get(), ni_shard);
        kernel_.add_channel(inject_tokens_[core.get()].get(), rt_shard);
        kernel_.add_channel(eject_data_[core.get()].get(), rt_shard);
    }

    // Each shard's worker thread allocates and releases flits through its
    // own pool segment (thread-local selection; see arch/flit_pool.h).
    kernel_.set_shard_thread_init(
        [](std::uint32_t shard) { Flit_pool::set_thread_segment(shard); });

    // Every input path to every component now carries a wake edge, so
    // activity gating is sound (see sim/kernel.h), and every channel sits
    // in its writer's shard, so the sharded schedule is race-free.
    // Build_options::kernel_mode picks the starting schedule; callers can
    // still flip modes with kernel().set_mode().
    kernel_.set_mode(options.kernel_mode);

    // Fault plan: validated against this topology, events sorted once.
    // NIs switch to drop-at-enqueue for unreachable destinations — a
    // faulted run must report disconnection, not throw or hang.
    if (options.fault_plan) {
        options.fault_plan->validate(topology_);
        fault_plan_ = options.fault_plan;
        transients_ = fault_plan_->transients();
        std::stable_sort(transients_.begin(), transients_.end(),
                         [](const Transient_fault& a,
                            const Transient_fault& b) { return a.at < b.at; });
        permanents_ = fault_plan_->permanents();
        std::stable_sort(permanents_.begin(), permanents_.end(),
                         [](const Permanent_fault& a,
                            const Permanent_fault& b) { return a.at < b.at; });
        for (const auto& ni : nis_) ni->set_fault_tolerant(true);
        if (fault_plan_->replay)
            for (const auto& ni : nis_) ni->set_replay_protocol(true);
        // The union the live-switchover check runs over starts as just the
        // original routing function.
        live_epochs_.push_back(&routes_);
    }
}

void Noc_system::set_mcast_routes(Mcast_route_set mroutes)
{
    if (fault_plan_)
        throw std::logic_error{
            "Noc_system: multicast does not compose with fault plans"};
    if (mroutes.core_count() != topology_.core_count())
        throw std::invalid_argument{
            "Noc_system: multicast route/core count mismatch"};
    // Validate every tree against the port map and VC budget up front,
    // like the ctor does for unicast routes — a bad tree would otherwise
    // surface as a mid-simulation logic error.
    for (int s = 0; s < topology_.core_count(); ++s) {
        const Core_id src{static_cast<std::uint32_t>(s)};
        for (std::size_t d = 0; d < mroutes.dset_count(); ++d) {
            const Mcast_tree& tree =
                mroutes.at(src, Dset_id{static_cast<std::uint32_t>(d)});
            if (!tree.empty())
                validate_mcast_tree(topology_, tree, params_.route_vcs);
        }
    }
    mcast_routes_ = std::make_unique<Mcast_route_set>(std::move(mroutes));
    for (const auto& ni : nis_) ni->set_mcast_routes(mcast_routes_.get());
}

void Noc_system::sync_multicast_counters()
{
    if (!mcast_routes_) return;
    std::uint64_t forks = 0;
    std::uint64_t copies = 0;
    for (const auto& r : routers_) {
        forks += r->multicast_forks();
        copies += r->multicast_copies();
    }
    stats_.record_multicast_forks(forks, copies);
}

void Noc_system::attach_probe(Probe* probe)
{
    if (probe != nullptr) probe->bind(shard_count_);
    probe_ = probe; // fault events go to the same probe as hop traces
    for (int s = 0; s < topology_.switch_count(); ++s)
        routers_[static_cast<std::size_t>(s)]->set_probe(
            probe,
            shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)}));
}

std::vector<std::uint64_t> Noc_system::switch_load_profile() const
{
    std::vector<std::uint64_t> weights;
    weights.reserve(routers_.size());
    for (const auto& r : routers_) weights.push_back(r->flits_routed());
    return weights;
}

std::uint32_t Noc_system::link_occupancy(Link_id l) const
{
    return link_data_.at(l.get())->occupancy();
}

void Noc_system::attach_telemetry(Telemetry_registry& registry) const
{
    // Fixed registration order (links, NIs, routers, kernel, pool,
    // multicast) keeps captures — and the sampler stream built from them —
    // deterministic.
    // Every read-function targets a counter the component maintains
    // anyway; nothing here adds hot-path work.
    for (int i = 0; i < topology_.link_count(); ++i) {
        const auto& l = topology_.links()[static_cast<std::size_t>(i)];
        const std::uint32_t shard = shard_of_switch(l.from);
        const Flit_channel* ch = link_data_[static_cast<std::size_t>(i)].get();
        const std::string base = "link" + std::to_string(i);
        registry.add_gauge(base + ".occ", shard,
                           [ch] { return ch->occupancy(); });
        registry.add_counter(base + ".flits", shard,
                             [ch] { return ch->transfer_count(); });
    }
    for (int c = 0; c < topology_.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        const std::uint32_t shard = shard_of_core(core);
        const Ni* ni = nis_[static_cast<std::size_t>(c)].get();
        const std::string base = "ni" + std::to_string(c);
        registry.add_counter(base + ".injected", shard,
                             [ni] { return ni->flits_injected(); });
        registry.add_counter(base + ".ejected", shard,
                             [ni] { return ni->flits_ejected(); });
        registry.add_gauge(base + ".queued", shard, [ni] {
            return static_cast<std::uint64_t>(ni->source_queue_flits());
        });
        registry.add_gauge(base + ".replay_pending", shard, [ni] {
            return static_cast<std::uint64_t>(ni->replay_pending());
        });
    }
    for (int s = 0; s < topology_.switch_count(); ++s) {
        const std::uint32_t shard =
            shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)});
        const Router* r = routers_[static_cast<std::size_t>(s)].get();
        const std::string base = "router" + std::to_string(s);
        registry.add_counter(base + ".routed", shard,
                             [r] { return r->flits_routed(); });
        registry.add_gauge(base + ".occ", shard, [r] {
            return static_cast<std::uint64_t>(r->total_occupancy());
        });
        // Blocked-cycle counter: scheduling observability, legitimately
        // schedule-dependent (see router.h) — consumers diffing streams
        // across kernel modes must skip it, like the kernel.* group.
        registry.add_counter(base + ".blocked", shard,
                             [r] { return r->blocked_sleep_entries(); });
    }
    const Sim_kernel* k = &kernel_;
    registry.add_counter("kernel.idle_shard_skips", 0,
                         [k] { return k->idle_shard_skip_count(); });
    registry.add_counter("kernel.skip_ahead_regions", 0,
                         [k] { return k->skip_ahead_region_count(); });
    registry.add_counter("kernel.skip_ahead_cycles", 0,
                         [k] { return k->skip_ahead_cycle_count(); });
    registry.add_counter("kernel.cross_shard_wakes", 0,
                         [k] { return k->cross_shard_wake_count(); });
    registry.add_gauge("kernel.active_components", 0, [k] {
        return static_cast<std::uint64_t>(k->active_component_count());
    });
    const Flit_pool* pool = &pool_;
    registry.add_gauge("pool.live", 0, [pool] {
        return static_cast<std::uint64_t>(pool->live());
    });
    registry.add_counter("pool.high_water", 0, [pool] {
        return static_cast<std::uint64_t>(pool->high_water());
    });
    // Multicast group — registered only when trees are installed, so
    // systems without collectives keep their registration set (and any
    // stream diffs over it) byte-identical to before.
    if (mcast_routes_) {
        for (int c = 0; c < topology_.core_count(); ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            const std::uint32_t shard = shard_of_core(core);
            const Ni* ni = nis_[static_cast<std::size_t>(c)].get();
            const std::string base = "ni" + std::to_string(c);
            registry.add_counter(base + ".mcast_injected", shard, [ni] {
                return ni->mcast_packets_injected();
            });
            registry.add_counter(base + ".mcast_delivered", shard, [ni] {
                return ni->mcast_deliveries();
            });
        }
        for (int s = 0; s < topology_.switch_count(); ++s) {
            const std::uint32_t shard =
                shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)});
            const Router* r = routers_[static_cast<std::size_t>(s)].get();
            registry.add_counter("router" + std::to_string(s) +
                                     ".mcast_forks",
                                 shard,
                                 [r] { return r->multicast_forks(); });
        }
    }
}

void Noc_system::warmup(Cycle cycles)
{
    run_with_faults(cycles);
}

void Noc_system::measure(Cycle cycles)
{
    open_measurement(cycles);
    advance(cycles);
}

void Noc_system::open_measurement(Cycle cycles)
{
    stats_.set_measurement_window(kernel_.now(), kernel_.now() + cycles);
}

void Noc_system::advance(Cycle cycles)
{
    run_with_faults(cycles);
}

void Noc_system::close_measurement()
{
    stats_.close_measurement_window(kernel_.now());
}

bool Noc_system::drain(Cycle max_cycles)
{
    if (!fault_plan_) {
        bool drained;
        if (sampler_ == nullptr) {
            drained = kernel_.run_until(
                [this] { return stats_.measured_in_flight() == 0; },
                max_cycles);
        } else {
            // Sampled fast path: same 64-cycle predicate cadence as
            // run_until, with the sampling splits inside each chunk — the
            // stop cycle is unchanged (splitting a kernel run at a cycle
            // boundary is behaviour-neutral; the fault path below relies
            // on the same fact).
            constexpr Cycle check_interval = 64;
            const Cycle deadline = kernel_.now() + max_cycles;
            while (kernel_.now() < deadline &&
                   stats_.measured_in_flight() != 0)
                run_plain(std::min(check_interval,
                                   deadline - kernel_.now()));
            drained = stats_.measured_in_flight() == 0;
        }
        sync_multicast_counters();
        return drained;
    }
    // Fixed 64-cycle chunks, split further at fault boundaries, so the
    // cadence of sequential points — and therefore the exact stop cycle —
    // is identical across kernel schedules. Termination: dropped packets
    // are subtracted from measured_in_flight (arch/network_stats.h), so a
    // purge can only bring the drain closer to done.
    constexpr Cycle drain_chunk = 64;
    const Cycle deadline = kernel_.now() + max_cycles;
    service_fault_events();
    while (stats_.measured_in_flight() != 0) {
        if (kernel_.now() >= deadline) {
            sync_fault_counters();
            return false;
        }
        const Cycle stop = next_fault_stop(
            std::min(deadline, kernel_.now() + drain_chunk));
        run_plain(stop - kernel_.now());
        service_fault_events();
    }
    sync_fault_counters();
    return true;
}

// --- fault engine -----------------------------------------------------------
// Everything below runs on the caller thread at sequential points between
// kernel runs: under the sharded schedule the workers are parked between
// run() calls, so these mutations need no synchronization and happen at
// the same cycle under every schedule — which is what keeps faulted runs
// bit-identical across kernel modes (the KernelEquivalence suite proves
// it).

void Noc_system::run_with_faults(Cycle cycles)
{
    if (!fault_plan_) {
        run_plain(cycles);
        sync_multicast_counters();
        return;
    }
    const Cycle end = kernel_.now() + cycles;
    service_fault_events();
    while (kernel_.now() < end) {
        run_plain(next_fault_stop(end) - kernel_.now());
        service_fault_events();
    }
    sync_fault_counters();
}

void Noc_system::run_plain(Cycle cycles)
{
    if (sampler_ == nullptr) { // the one-branch-when-disabled discipline
        kernel_.run(cycles);
        return;
    }
    // Split this kernel run at the sampler's due cycles so every sample
    // observes the registry at an exact period multiple. Crucially this
    // NEVER services fault events: the fault cadence (next_fault_stop,
    // drain chunks) stays exactly as unsampled, so a reroute completion —
    // which checks pool liveness at ITS sequential points — lands on the
    // same cycle with or without a sampler attached.
    const Cycle end = kernel_.now() + cycles;
    while (kernel_.now() < end) {
        const Cycle due = sampler_->next_sample_at();
        const Cycle stop = (due > kernel_.now() && due < end) ? due : end;
        kernel_.run(stop - kernel_.now());
        if (kernel_.now() >= sampler_->next_sample_at())
            sampler_->sample(kernel_.now());
    }
}

Cycle Noc_system::next_fault_stop(Cycle limit) const
{
    Cycle stop = limit;
    if (next_transient_ < transients_.size())
        stop = std::min(stop, transients_[next_transient_].at);
    if (next_permanent_ < permanents_.size())
        stop = std::min(stop, permanents_[next_permanent_].at);
    if (reroute_at_ != invalid_cycle) stop = std::min(stop, reroute_at_);
    return std::max(stop, kernel_.now() + 1); // always make progress
}

void Noc_system::service_fault_events()
{
    const Cycle now = kernel_.now();
    collect_acks();
    // A reroute completion was scheduled before any event still pending,
    // so it resolves first; then failures, then corruptions on the
    // (possibly reduced) surviving network.
    //
    // Two completion paths:
    //   * Recovery_mode::epoch — at reroute_at_ exactly, attempt a LIVE
    //     switchover: old-epoch packets finish on their retired routes
    //     while new injections take the failure-aware set, admitted only
    //     when the union CDG of every routing function still in flight
    //     plus the candidate is acyclic (each function alone being
    //     deadlock-free does not make their mixture so). A cyclic union
    //     falls back to the drain path below.
    //   * Drain path (Recovery_mode::drain, or the fallback) — completion
    //     additionally waits for the network to empty (pool_.live() == 0):
    //     injection stays paused, surviving old-route traffic drains
    //     deadlock-free. While waiting past reroute_at_, next_fault_stop
    //     degenerates to 1-cycle chunks.
    // Both the pool count and the union verdict are schedule-invariant at
    // sequential points, so the switchover cycle is bit-identical across
    // kernel modes either way.
    if (reroute_at_ != invalid_cycle && reroute_at_ <= now) {
        if (fault_plan_->recovery == Recovery_mode::epoch && !await_drain_ &&
            !try_live_switchover())
            await_drain_ = true;
        if (reroute_at_ != invalid_cycle && pool_.live() == 0)
            complete_reroute();
    }
    while (next_permanent_ < permanents_.size() &&
           permanents_[next_permanent_].at <= now)
        apply_permanent(permanents_[next_permanent_++]);
    while (next_transient_ < transients_.size() &&
           transients_[next_transient_].at <= now)
        apply_transient(transients_[next_transient_++]);
    // Pool empty at a sequential point ⇒ no packet of any retired epoch is
    // in flight any more; trim the union back to the current function.
    if (pool_.live() == 0 && live_epochs_.size() > 1)
        live_epochs_.assign(1, &current_routes());
}

void Noc_system::apply_transient(const Transient_fault& fault)
{
    if (failed_links_.count(fault.link) != 0) return; // dead wire: nothing
    const auto& tl = topology_.link(fault.link);
    Router& rx = *routers_[tl.to.get()];
    const int in_port = topology_.input_port_of_link(fault.link).get();
    // The victim is the in-flight flit closest to delivery: the parked
    // arrival first, else the oldest wire stage. Deterministic no-op when
    // the link is idle at the fault cycle.
    Flit_ref victim = rx.arrival_pending(in_port);
    if (!victim.is_valid())
        link_data_[fault.link.get()]->for_each_owned(
            [&](const Flit_ref& ref) {
                if (!victim.is_valid()) victim = ref;
            });
    if (!victim.is_valid()) return;
    pool_[victim].corrupted = true;
    stats_.record_corrupted_flit();
    kernel_.wake(&rx);
    if (probe_ != nullptr) {
        Fault_event ev;
        ev.kind = Fault_event::Kind::transient_injected;
        ev.at = kernel_.now();
        ev.links = {fault.link};
        probe_->on_fault_event(ev);
    }
}

void Noc_system::apply_permanent(const Permanent_fault& fault)
{
    const Cycle now = kernel_.now();
    // Router death / region power-off lowers to the switch's full incident
    // link set plus its NIs powering off (2g). Re-failing a dead link or a
    // dead switch is a no-op.
    std::vector<Switch_id> fresh_switches;
    for (const Switch_id s : fault.switches)
        if (dead_switches_.insert(s).second) fresh_switches.push_back(s);
    std::vector<Link_id> fresh;
    const auto fail_link = [&](Link_id l) {
        if (failed_links_.insert(l).second) fresh.push_back(l);
    };
    for (const Link_id l : fault.links) fail_link(l);
    for (const Switch_id s : fresh_switches) {
        for (const Link_id l : topology_.out_links(s)) fail_link(l);
        for (const Link_id l : topology_.in_links(s)) fail_link(l);
    }
    if (fresh.empty() && fresh_switches.empty()) return;

    // ---- 1. Doom set: every packet that can no longer make progress.
    //   (a) flits physically on a dead link — wire stages, the parked
    //       arrival, the sender's retransmission window;
    //   (b) head flits anywhere whose REMAINING route (route_index is the
    //       next hop) crosses a dead link, including heads still in NI
    //       injection windows and inject channels, plus the queued record
    //       of a mid-serialization packet;
    //   (c) straddlers — packets owning an output VC of a dead link: the
    //       head is past the failure point (it may even have been
    //       delivered) but the tail is not, so no head flit in the network
    //       carries the route any more. Wormhole ownership is the witness.
    std::unordered_map<Packet_id, bool> doomed; // pid -> any measured flit
    const auto note = [&](const Flit& f) { doomed[f.packet] |= f.measured; };
    const auto route_dies = [&](Core_id src, const Route& r,
                                std::uint32_t from_index) {
        Switch_id sw = topology_.core_switch(src);
        for (std::size_t h = 0; h < r.size(); ++h) {
            const Link_id l =
                topology_.link_of_output_port(sw, Port_id{r[h].out_port});
            if (!l.is_valid()) break; // ejection hop
            if (h >= from_index && failed_links_.count(l) != 0) return true;
            sw = topology_.link(l).to;
        }
        return false;
    };
    const auto core_dead = [&](Core_id c) {
        return dead_switches_.count(topology_.core_switch(c)) != 0;
    };
    // core_dead catches what route_dies cannot: packets between cores of
    // one dead switch (their route crosses no topology link) and body
    // flits addressed to a dead destination (no route pointer needed).
    const auto flit_dies = [&](const Flit& f) {
        return core_dead(f.src) || core_dead(f.dst) ||
               (f.route != nullptr &&
                route_dies(f.src, *f.route, f.route_index));
    };
    for (const Link_id l : fresh) {
        link_data_[l.get()]->for_each_owned(
            [&](const Flit_ref& ref) { note(pool_[ref]); });
        const auto& tl = topology_.link(l);
        const int in_port = topology_.input_port_of_link(l).get();
        if (const Flit_ref ref =
                routers_[tl.to.get()]->arrival_pending(in_port);
            ref.is_valid())
            note(pool_[ref]);
        Router& tx = *routers_[tl.from.get()];
        const int out_port = topology_.output_port_of_link(l).get();
        tx.output_sender_mut(out_port).for_each_window(
            [&](Flit_ref ref) { note(pool_[ref]); });
        for (int v = 0; v < params_.total_vcs(); ++v) {
            const Packet_id owner = tx.output_vc_owner(out_port, v);
            if (owner.is_valid()) doomed.try_emplace(owner, false);
        }
    }
    for (const auto& r : routers_) {
        r->for_each_buffered([&](int, Flit_ref ref) {
            if (flit_dies(pool_[ref])) note(pool_[ref]);
        });
        for (int p = 0; p < r->output_count(); ++p)
            r->output_sender_mut(p).for_each_window([&](Flit_ref ref) {
                if (flit_dies(pool_[ref])) note(pool_[ref]);
            });
    }
    for (int i = 0; i < topology_.link_count(); ++i)
        link_data_[static_cast<std::size_t>(i)]->for_each_owned(
            [&](const Flit_ref& ref) {
                if (flit_dies(pool_[ref])) note(pool_[ref]);
            });
    for (int c = 0; c < topology_.core_count(); ++c) {
        inject_data_[static_cast<std::size_t>(c)]->for_each_owned(
            [&](const Flit_ref& ref) {
                if (flit_dies(pool_[ref])) note(pool_[ref]);
            });
        // Ejection channels too: a packet whose last flit is at the dead
        // destination's doorstep has nothing left anywhere else, so this
        // is the only scan that can doom it.
        eject_data_[static_cast<std::size_t>(c)]->for_each_owned(
            [&](const Flit_ref& ref) {
                if (flit_dies(pool_[ref])) note(pool_[ref]);
            });
        Ni& ni = *nis_[static_cast<std::size_t>(c)];
        ni.injection_sender().for_each_window([&](Flit_ref ref) {
            if (flit_dies(pool_[ref])) note(pool_[ref]);
        });
        ni.visit_in_progress([&](Packet_id pid, const Route& route,
                                 Core_id dst) {
            const Core_id src{static_cast<std::uint32_t>(c)};
            if (route_dies(src, route, 0) || core_dead(src) ||
                core_dead(dst))
                doomed.try_emplace(pid, false);
        });
    }

    // ---- 2. Purge. Flit-drop accounting: originals count, ACK/NACK wire
    // copies release uncounted (their window originals are the count);
    // accepted copies in VC rings do count, so under ACK/NACK a flit whose
    // accept was in flight can be counted twice — flits_dropped is a
    // diagnostic, the exact invariants live on the packet counters.
    std::uint64_t flits_dropped = 0;
    const auto drop_ref = [&](Flit_ref ref) {
        const auto it = doomed.find(pool_[ref].packet);
        if (it != doomed.end()) it->second |= pool_[ref].measured;
        ++flits_dropped;
        pool_.release(ref);
    };
    const auto release_copy = [&](Flit_ref ref) { pool_.release(ref); };
    const bool ack_nack = params_.fc == Flow_control_kind::ack_nack;
    const auto is_doomed_pid = [&](Packet_id pid) {
        return doomed.find(pid) != doomed.end();
    };
    const auto is_doomed_flit = [&](const Flit& f) {
        return doomed.find(f.packet) != doomed.end();
    };

    // 2a. Dead links: everything on the wire dies with the link, the
    // sender's window drains, and the reverse channel goes silent.
    for (const Link_id l : fresh) {
        link_data_[l.get()]->remove_owned_if([&](Flit_ref& ref) {
            if (ack_nack)
                release_copy(ref);
            else
                drop_ref(ref);
            return true;
        });
        link_tokens_[l.get()]->remove_owned_if([](Fc_token&) { return true; });
        const auto& tl = topology_.link(l);
        const int in_port = topology_.input_port_of_link(l).get();
        if (const Flit_ref ref = routers_[tl.to.get()]->take_arrival(in_port);
            ref.is_valid()) {
            if (ack_nack)
                release_copy(ref);
            else
                drop_ref(ref);
        }
        routers_[tl.from.get()]
            ->output_sender_mut(topology_.output_port_of_link(l).get())
            .fail(drop_ref);
    }

    // 2b. ACK/NACK: find the SURVIVING windows that hold doomed entries —
    // they need a full protocol reset (2e) — before anything mutates them.
    std::vector<Link_id> reset_links;
    std::vector<Core_id> reset_cores;
    if (ack_nack) {
        for (int i = 0; i < topology_.link_count(); ++i) {
            const Link_id l{static_cast<std::uint32_t>(i)};
            if (failed_links_.count(l) != 0) continue;
            bool dirty = false;
            const auto& tl = topology_.link(l);
            routers_[tl.from.get()]
                ->output_sender_mut(topology_.output_port_of_link(l).get())
                .for_each_window([&](Flit_ref ref) {
                    dirty = dirty || is_doomed_flit(pool_[ref]);
                });
            if (dirty) reset_links.push_back(l);
        }
        for (int c = 0; c < topology_.core_count(); ++c) {
            bool dirty = false;
            nis_[static_cast<std::size_t>(c)]
                ->injection_sender()
                .for_each_window([&](Flit_ref ref) {
                    dirty = dirty || is_doomed_flit(pool_[ref]);
                });
            if (dirty)
                reset_cores.push_back(Core_id{static_cast<std::uint32_t>(c)});
        }
    }

    // 2c. Router buffers and wormhole state; purged VC-ring flits restore
    // the credit their normal return will never send (credit scheme only —
    // ON/OFF masks recompute from occupancy, ACK/NACK windows reset in 2e).
    for (int s = 0; s < topology_.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        routers_[static_cast<std::size_t>(s)]->purge_doomed(
            is_doomed_pid, drop_ref, [&](int port, int vc) {
                if (params_.fc != Flow_control_kind::credit) return;
                const auto& cores = topology_.switch_cores(sw);
                if (port < static_cast<int>(cores.size())) {
                    nis_[cores[static_cast<std::size_t>(port)].get()]
                        ->injection_sender()
                        .restore_credit(vc);
                    return;
                }
                const Link_id l = topology_.in_links(
                    sw)[static_cast<std::size_t>(port) - cores.size()];
                if (failed_links_.count(l) != 0) return; // dead sender
                routers_[topology_.link(l).from.get()]
                    ->output_sender_mut(
                        topology_.output_port_of_link(l).get())
                    .restore_credit(vc);
            });
    }

    // 2d. Doomed originals still in flight on SURVIVING wires
    // (credit / ON-OFF carry ownership on the wire; ACK/NACK wires hold
    // copies and are handled by the 2e resets). Ejection channels carry
    // ownership under every scheme and have no flow control to repair.
    if (!ack_nack) {
        for (int i = 0; i < topology_.link_count(); ++i) {
            const Link_id l{static_cast<std::uint32_t>(i)};
            if (failed_links_.count(l) != 0) continue;
            Link_sender& up =
                routers_[topology_.link(l).from.get()]->output_sender_mut(
                    topology_.output_port_of_link(l).get());
            link_data_[static_cast<std::size_t>(i)]->remove_owned_if(
                [&](Flit_ref& ref) {
                    if (!is_doomed_flit(pool_[ref])) return false;
                    const int vc = pool_[ref].vc;
                    drop_ref(ref);
                    if (params_.fc == Flow_control_kind::credit)
                        up.restore_credit(vc);
                    return true;
                });
        }
        for (int c = 0; c < topology_.core_count(); ++c) {
            Link_sender& up =
                nis_[static_cast<std::size_t>(c)]->injection_sender();
            inject_data_[static_cast<std::size_t>(c)]->remove_owned_if(
                [&](Flit_ref& ref) {
                    if (!is_doomed_flit(pool_[ref])) return false;
                    const int vc = pool_[ref].vc;
                    drop_ref(ref);
                    if (params_.fc == Flow_control_kind::credit)
                        up.restore_credit(vc);
                    return true;
                });
        }
    }
    for (int c = 0; c < topology_.core_count(); ++c)
        eject_data_[static_cast<std::size_t>(c)]->remove_owned_if(
            [&](Flit_ref& ref) {
                if (!is_doomed_flit(pool_[ref])) return false;
                drop_ref(ref);
                return true;
            });

    // 2e. ACK/NACK protocol resets on surviving links that lost window
    // entries: clear the wire (copies), the parked arrival (also a copy)
    // and the reverse channel, then rewind the window against the
    // receiver's expected sequence (see Link_sender::reset_window).
    if (ack_nack) {
        for (const Link_id l : reset_links) {
            link_data_[l.get()]->remove_owned_if([&](Flit_ref& ref) {
                release_copy(ref);
                return true;
            });
            link_tokens_[l.get()]->remove_owned_if(
                [](Fc_token&) { return true; });
            const auto& tl = topology_.link(l);
            Router& rx = *routers_[tl.to.get()];
            const int in_port = topology_.input_port_of_link(l).get();
            if (const Flit_ref ref = rx.take_arrival(in_port);
                ref.is_valid())
                release_copy(ref);
            routers_[tl.from.get()]
                ->output_sender_mut(topology_.output_port_of_link(l).get())
                .reset_window(rx.expected_seq(in_port), is_doomed_flit,
                              drop_ref);
        }
        for (const Core_id c : reset_cores) {
            inject_data_[c.get()]->remove_owned_if([&](Flit_ref& ref) {
                release_copy(ref);
                return true;
            });
            inject_tokens_[c.get()]->remove_owned_if(
                [](Fc_token&) { return true; });
            Router& rx = *routers_[topology_.core_switch(c).get()];
            const int in_port = topology_.injection_port_of_core(c).get();
            if (const Flit_ref ref = rx.take_arrival(in_port);
                ref.is_valid())
                release_copy(ref);
            nis_[c.get()]->injection_sender().reset_window(
                rx.expected_seq(in_port), is_doomed_flit, drop_ref);
        }
    }

    // 2f. NI queue records (the mid-serialization packet) and reassembly
    // state of doomed packets.
    for (const auto& ni : nis_)
        ni->purge_doomed(is_doomed_pid, [&](Packet_id pid, bool measured,
                                            std::uint32_t remaining) {
            doomed[pid] = doomed[pid] || measured;
            flits_dropped += remaining;
        });

    // 2g. Dead switches power their NIs off. Runs after 2f so a
    // mid-serialization queue front was already popped with accounting;
    // what remains — queued records that never materialized a flit and
    // pending replays (whose purged flits were counted when they were
    // doomed) — reports as unreachable packets.
    Network_stats::Slot& slot = stats_.slot(0);
    for (const Switch_id s : fresh_switches)
        for (const Core_id c : topology_.switch_cores(s))
            nis_[c.get()]->power_off([&](bool measured, std::uint32_t) {
                slot.on_packet_unreachable(measured, 0);
            });

    // ---- 3. Account, pause injection, schedule the online reroute.
    // With the replay protocol on, a doomed packet whose source NI still
    // holds its un-ACKed record re-queues after the reroute (same packet
    // id / birth / measured flag — a replay is the SAME packet) instead of
    // counting as dropped; sources give up after Fault_plan::max_replays
    // attempts, and packets of dead cores count unreachable. The doom set
    // is iterated in packet-id order so replay release cycles are
    // schedule-invariant.
    std::vector<std::pair<Packet_id, bool>> doomed_sorted(doomed.begin(),
                                                          doomed.end());
    std::sort(doomed_sorted.begin(), doomed_sorted.end(),
              [](const auto& a, const auto& b) {
                  return a.first.get() < b.first.get();
              });
    const bool replay = fault_plan_->replay;
    std::uint64_t replayed = 0;
    for (const auto& [pid, measured] : doomed_sorted) {
        const Core_id src{static_cast<std::uint32_t>(pid.get() >> 40)};
        Ni& sni = *nis_[src.get()];
        if (replay && sni.can_replay(pid, fault_plan_->max_replays)) {
            // Strictly after the epoch-path switchover; on the drain path a
            // release may precede publication, where the record waits in
            // the (paused) source queue and rebinds at publication.
            const Cycle release =
                now + fault_plan_->reroute_latency +
                fault_plan_->replay_backoff * (sni.replay_attempts(pid) + 1);
            sni.schedule_replay(pid, release);
            ++replayed;
        } else {
            if (replay) sni.drop_replay_record(pid);
            if (core_dead(src))
                slot.on_packet_unreachable(measured, 0);
            else
                slot.on_packet_dropped(measured);
        }
    }
    slot.on_flits_dropped(flits_dropped);
    stats_.record_replays(replayed);

    for (const auto& ni : nis_) ni->set_inject_paused(true);
    if (reroute_at_ == invalid_cycle) {
        pending_recovery_ = {};
        pending_recovery_.failed_at = now;
    }
    pending_recovery_.links.assign(failed_links_.begin(),
                                   failed_links_.end());
    pending_recovery_.switches.assign(dead_switches_.begin(),
                                      dead_switches_.end());
    pending_recovery_.packets_dropped += doomed.size() - replayed;
    pending_recovery_.packets_replayed += replayed;
    reroute_at_ = now + fault_plan_->reroute_latency;
    await_drain_ = false; // this purge may change the union verdict

    wake_everything();
    if (probe_ != nullptr) {
        Fault_event ev;
        ev.kind = !fresh_switches.empty()
                      ? (fault.is_region ? Fault_event::Kind::region_failed
                                         : Fault_event::Kind::router_failed)
                      : Fault_event::Kind::link_failed;
        ev.at = now;
        ev.links = fresh;
        ev.switches = fresh_switches;
        ev.packets_dropped = doomed.size() - replayed;
        ev.packets_replayed = replayed;
        probe_->on_fault_event(ev);
        if (replayed != 0) {
            Fault_event rev;
            rev.kind = Fault_event::Kind::packet_replayed;
            rev.at = now;
            rev.packets_replayed = replayed;
            probe_->on_fault_event(rev);
        }
    }
}

// Failure-aware route recomputation, shared by both completion paths.
// Ranks come from the SURVIVING graph, not the healthy topology: stale
// ranks would forbid detours around a cut tree edge and report reachable
// pairs as unreachable (topology/fault.h). A duplex link with one dead
// direction is retired whole (symmetrize_failures) so the up*/down*
// reachability argument holds; the surviving routes then reach exactly the
// pairs connected in the undirected surviving graph. Fixed preferred root,
// so successive reroutes compose deterministically.

bool Noc_system::try_live_switchover()
{
    const std::set<Link_id> retired =
        symmetrize_failures(topology_, failed_links_);
    Reroute_result rr = reroute_around_failures(
        topology_,
        failure_aware_ranks(topology_, fault_plan_->reroute_root, retired),
        retired);
    // Admission: the CDG over every routing function that may still have
    // packets in flight PLUS the candidate must be acyclic — each function
    // alone being deadlock-free does not make their mixture so. A cyclic
    // union rejects the live switchover and the caller falls back to the
    // drain path.
    std::vector<const Route_set*> union_sets = live_epochs_;
    union_sets.push_back(&rr.routes);
    if (!analyze_union_deadlock(topology_, union_sets, params_.route_vcs,
                                retired)
             .acyclic)
        return false;
    publish_reroute(std::move(rr.routes), std::move(rr.unreachable), true);
    return true;
}

void Noc_system::complete_reroute()
{
    const std::set<Link_id> retired =
        symmetrize_failures(topology_, failed_links_);
    Reroute_result rr = reroute_around_failures(
        topology_,
        failure_aware_ranks(topology_, fault_plan_->reroute_root, retired),
        retired);
    publish_reroute(std::move(rr.routes), std::move(rr.unreachable), false);
}

void Noc_system::publish_reroute(
    Route_set routes, std::vector<std::pair<Core_id, Core_id>> unreachable,
    bool live)
{
    const Cycle now = kernel_.now();
    reroute_epochs_.push_back(
        std::make_unique<Route_set>(std::move(routes)));
    const Route_set* fresh = reroute_epochs_.back().get();
    unreachable_pairs_ = std::move(unreachable);
    if (live)
        live_epochs_.push_back(fresh); // old epochs still in flight
    else
        live_epochs_.assign(1, fresh); // drain path: network is empty

    // Publish the new LUTs: queued-but-unstarted packets rebind (or drop,
    // when their destination is now unreachable); mid-flight packets keep
    // pointers into the retired epoch, which stays alive with the system.
    Network_stats::Slot& slot = stats_.slot(0);
    for (const auto& ni : nis_) {
        ni->set_routes(fresh);
        ni->rebind_queued_routes([&](bool measured, std::uint32_t flits) {
            slot.on_packet_unreachable(measured, flits);
        });
        if (!ni->powered_off()) ni->set_inject_paused(false);
    }
    reroute_at_ = invalid_cycle;
    await_drain_ = false;
    pending_recovery_.recovered_at = now;
    pending_recovery_.live_switchover = live;
    pending_recovery_.unreachable_pairs = unreachable_pairs_;
    stats_.record_recovery(pending_recovery_);
    wake_everything();
    if (probe_ != nullptr) {
        Fault_event ev;
        ev.kind = Fault_event::Kind::rerouted;
        ev.at = now;
        ev.links.assign(failed_links_.begin(), failed_links_.end());
        ev.switches.assign(dead_switches_.begin(), dead_switches_.end());
        ev.unreachable_pairs = unreachable_pairs_.size();
        probe_->on_fault_event(ev);
    }
}

void Noc_system::collect_acks()
{
    if (!fault_plan_ || !fault_plan_->replay) return;
    // Packet ids encode their source core in the high bits (arch/ni.cpp),
    // so routing an ACK home is a direct index. NI iteration order is
    // fixed, keeping record retirement deterministic.
    for (const auto& ni : nis_)
        for (const Packet_id pid : ni->take_delivered_pids())
            nis_[static_cast<std::size_t>(pid.get() >> 40)]->ack_packet(pid);
}

void Noc_system::sync_fault_counters()
{
    collect_acks(); // bound replay-record growth at every protocol stage
    std::uint64_t retx = 0;
    for (const auto& r : routers_)
        for (int p = 0; p < r->output_count(); ++p)
            retx += r->output_sender(p).retransmissions();
    for (const auto& n : nis_) retx += n->injection_sender().retransmissions();
    stats_.record_retransmissions(retx);
}

void Noc_system::wake_everything()
{
    for (const auto& r : routers_) kernel_.wake(r.get());
    for (const auto& n : nis_) kernel_.wake(n.get());
}

std::uint64_t Noc_system::link_flits(Link_id l) const
{
    return link_data_.at(l.get())->transfer_count();
}

std::uint64_t Noc_system::total_router_buffer_writes() const
{
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->buffer_writes();
    return n;
}

std::uint64_t Noc_system::total_router_buffer_reads() const
{
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->buffer_reads();
    return n;
}

std::uint64_t Noc_system::total_flits_routed() const
{
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->flits_routed();
    return n;
}

} // namespace noc
