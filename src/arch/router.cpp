#include "arch/router.h"

#include <stdexcept>

namespace noc {

Router::Router(Switch_id id, const Network_params& params,
               std::vector<Router_input_port> inputs,
               std::vector<Router_output_port> outputs)
    : id_{id}, params_{params}
{
    params_.validate();
    if (inputs.empty() || outputs.empty())
        throw std::invalid_argument{"Router: needs ports"};

    const int vcs = params_.total_vcs();
    for (auto& ip : inputs) {
        if (ip.data == nullptr || ip.tokens == nullptr)
            throw std::invalid_argument{"Router: null input channel"};
        Input in{ip, {}, Round_robin_arbiter{vcs}, 0};
        in.vcs.reserve(static_cast<std::size_t>(vcs));
        for (int v = 0; v < vcs; ++v) {
            Vc_state vs;
            vs.fifo = std::make_unique<Bounded_fifo<Flit>>(
                static_cast<std::size_t>(params_.buffer_depth));
            in.vcs.push_back(std::move(vs));
        }
        inputs_.push_back(std::move(in));
    }
    for (auto& op : outputs) {
        outputs_.push_back(
            Output{Link_sender{params_, op.data, op.tokens, op.is_ejection},
                   std::vector<Packet_id>(static_cast<std::size_t>(vcs)),
                   Round_robin_arbiter{static_cast<int>(inputs_.size())},
                   op.is_ejection});
    }
}

bool Router::is_quiescent() const
{
    if (buffered_ != 0) return false;
    // Only ACK/NACK senders hold work of their own (a retransmission
    // backlog); credit/ON-OFF sender state is passive between tokens.
    if (params_.fc == Flow_control_kind::ack_nack)
        for (const auto& o : outputs_)
            if (!o.sender.is_quiescent()) return false;
    return true;
}

std::string Router::name() const
{
    return "router" + std::to_string(id_.get());
}

std::optional<Router::Request> Router::classify(const Input& in, int vc) const
{
    const Vc_state& vs = in.vcs[static_cast<std::size_t>(vc)];
    if (vs.fifo->empty()) return std::nullopt;
    const Flit& f = vs.fifo->front();

    int out_port = 0;
    int out_vc = 0;
    if (is_head(f.kind)) {
        if (f.route == nullptr || f.route_index >= f.route->size())
            throw std::logic_error{"Router: head flit without route"};
        const Hop& hop = (*f.route)[f.route_index];
        out_port = hop.out_port;
        out_vc = params_.effective_vc(f.cls, hop.out_vc);
    } else {
        if (!vs.bound)
            throw std::logic_error{"Router: body flit with no binding"};
        out_port = vs.out_port;
        out_vc = vs.out_vc;
    }
    if (out_port >= static_cast<int>(outputs_.size()))
        throw std::logic_error{"Router: route references bad output port"};

    const Output& o = outputs_[static_cast<std::size_t>(out_port)];
    // Wormhole ownership: a head may claim an output VC only when free.
    if (is_head(f.kind)) {
        if (o.vc_owner[static_cast<std::size_t>(out_vc)].is_valid())
            return std::nullopt;
    }
    if (!o.sender.can_send(out_vc)) return std::nullopt;
    return Request{out_port, out_vc};
}

void Router::step(Cycle now)
{
    (void)now;
    // Phase 1: reverse-channel tokens.
    for (auto& o : outputs_) o.sender.begin_cycle();

    // Phase 2a: each input nominates one VC (GT priority, then round-robin).
    const int vcs = params_.total_vcs();
    auto& nominated = nominated_;
    nominated.assign(inputs_.size(), Nomination{});
    auto& vc_ready = vc_ready_;
    vc_ready.assign(static_cast<std::size_t>(vcs), false);
    vc_req_.assign(static_cast<std::size_t>(vcs), Request{});
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        Input& in = inputs_[i];
        // Dedicated GT VC wins unconditionally when ready.
        if (params_.enable_gt) {
            if (auto req = classify(in, params_.gt_vc())) {
                nominated[i] = {params_.gt_vc(), *req};
                continue;
            }
        }
        for (int v = 0; v < vcs; ++v) {
            const auto sv = static_cast<std::size_t>(v);
            vc_ready[sv] = false;
            if (params_.enable_gt && v == params_.gt_vc()) continue;
            if (const auto req = classify(in, v)) {
                vc_ready[sv] = true;
                vc_req_[sv] = *req;
            }
        }
        const int v = in.vc_arb.pick(vc_ready);
        if (v >= 0) nominated[i] = {v, vc_req_[static_cast<std::size_t>(v)]};
    }

    // Phase 2b: each output grants one nominee; GT has absolute priority.
    auto& wants = wants_;
    wants.assign(inputs_.size(), false);
    for (std::size_t op = 0; op < outputs_.size(); ++op) {
        Output& out = outputs_[op];
        bool any = false;
        bool any_gt = false;
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            const auto& nom = nominated[i];
            const bool w =
                nom.vc >= 0 && nom.req.out_port == static_cast<int>(op);
            wants[i] = w;
            if (w) {
                any = true;
                const Flit& f = inputs_[i]
                                    .vcs[static_cast<std::size_t>(nom.vc)]
                                    .fifo->front();
                any_gt = any_gt || f.cls == Traffic_class::gt;
            }
        }
        if (!any) continue;
        if (any_gt) {
            for (std::size_t i = 0; i < inputs_.size(); ++i) {
                if (!wants[i]) continue;
                const auto& nom = nominated[i];
                const Flit& f = inputs_[i]
                                    .vcs[static_cast<std::size_t>(nom.vc)]
                                    .fifo->front();
                wants[i] = f.cls == Traffic_class::gt;
            }
        }
        const int winner = out.in_arb.pick(wants);
        if (winner < 0) continue;

        // Switch traversal.
        Input& in = inputs_[static_cast<std::size_t>(winner)];
        const Nomination& nom = nominated[static_cast<std::size_t>(winner)];
        Vc_state& vs = in.vcs[static_cast<std::size_t>(nom.vc)];
        Flit f = vs.fifo->pop();
        --buffered_;
        ++flits_routed_;

        if (is_head(f.kind)) {
            vs.bound = true;
            vs.out_port = static_cast<std::uint16_t>(nom.req.out_port);
            vs.out_vc = static_cast<std::uint16_t>(nom.req.out_vc);
            out.vc_owner[static_cast<std::size_t>(nom.req.out_vc)] = f.packet;
            ++f.route_index;
        }
        if (is_tail(f.kind)) {
            vs.bound = false;
            out.vc_owner[static_cast<std::size_t>(nom.req.out_vc)] =
                Packet_id::invalid();
        }
        const auto freed_vc = f.vc; // VC the flit occupied in our buffer
        f.vc = static_cast<std::uint16_t>(nom.req.out_vc);
        out.sender.send(std::move(f));

        // Return a credit upstream for the freed buffer slot.
        if (params_.fc == Flow_control_kind::credit)
            in.port.tokens->write(
                Fc_token{Fc_token::Kind::credit, freed_vc, 0, 0});
    }

    // Phase 2c: ACK/NACK outputs put one (re)transmission on the wire.
    for (auto& o : outputs_) o.sender.end_cycle();

    // Phase 3: arrivals (after allocation, so flits wait >= 1 cycle).
    for (auto& in : inputs_) deliver_arrival(in, now);

    // Phase 4: ON/OFF stop masks reflect post-arrival occupancy.
    if (params_.fc == Flow_control_kind::on_off) {
        for (auto& in : inputs_) {
            std::uint32_t mask = 0;
            for (int v = 0; v < vcs; ++v)
                if (in.vcs[static_cast<std::size_t>(v)].fifo->free_slots() <=
                    static_cast<std::size_t>(in.port.onoff_margin))
                    mask |= 1u << v;
            in.port.tokens->write(
                Fc_token{Fc_token::Kind::on_off_mask, 0, mask, 0});
        }
    }
}

void Router::deliver_arrival(Input& in, Cycle now)
{
    (void)now;
    const auto& arriving = in.port.data->out();
    if (!arriving) return;
    const Flit& f = *arriving;

    if (params_.fc == Flow_control_kind::ack_nack) {
        auto& fifo = *in.vcs[0].fifo;
        if (f.link_seq == in.expected_seq && !fifo.full()) {
            fifo.push(f);
            ++buffered_;
            in.port.tokens->write(Fc_token{Fc_token::Kind::ack, 0, 0,
                                           in.expected_seq});
            ++in.expected_seq;
        } else {
            // Drop and ask the sender to rewind to what we expect.
            in.port.tokens->write(
                Fc_token{Fc_token::Kind::nack, 0, 0, in.expected_seq});
        }
        return;
    }
    in.vcs.at(f.vc).fifo->push(f);
    ++buffered_;
}

std::uint64_t Router::buffer_writes() const
{
    std::uint64_t n = 0;
    for (const auto& in : inputs_)
        for (const auto& vs : in.vcs) n += vs.fifo->write_count();
    return n;
}

std::uint64_t Router::buffer_reads() const
{
    std::uint64_t n = 0;
    for (const auto& in : inputs_)
        for (const auto& vs : in.vcs) n += vs.fifo->read_count();
    return n;
}

std::size_t Router::input_vc_occupancy(int port, int vc) const
{
    return inputs_.at(static_cast<std::size_t>(port))
        .vcs.at(static_cast<std::size_t>(vc))
        .fifo->size();
}

std::size_t Router::total_occupancy() const
{
    std::size_t n = 0;
    for (const auto& in : inputs_)
        for (const auto& vs : in.vcs) n += vs.fifo->size();
    return n;
}

} // namespace noc
