#include "arch/router.h"

#include "arch/probe.h"
#include "topology/multicast.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace noc {

Router::Router(Switch_id id, const Network_params& params, Flit_pool* pool,
               std::vector<Router_input_port> inputs,
               std::vector<Router_output_port> outputs)
    : id_{id}, params_{params}, pool_{pool}
{
    params_.validate();
    if (pool_ == nullptr)
        throw std::invalid_argument{"Router: null flit pool"};
    if (inputs.empty() || outputs.empty())
        throw std::invalid_argument{"Router: needs ports"};

    const int vcs = params_.total_vcs();
    if (vcs > 64 || inputs.size() > 64)
        throw std::invalid_argument{
            "Router: allocation masks support at most 64 VCs and ports"};
    for (auto& ip : inputs) {
        if (ip.data == nullptr || ip.tokens == nullptr)
            throw std::invalid_argument{"Router: null input channel"};
        Input in{ip, {}, Round_robin_arbiter{vcs}, 0, 0, {}};
        in.vcs.reserve(static_cast<std::size_t>(vcs));
        for (int v = 0; v < vcs; ++v)
            in.vcs.push_back(Vc_state{.fifo = Ring_fifo<Flit_ref>{
                                          static_cast<std::size_t>(
                                              params_.buffer_depth)}});
        inputs_.push_back(std::move(in));
    }
    // Wire the arrival sinks once the Input addresses are final.
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        inputs_[i].port.data->set_sink(&inputs_[i].arrival_sink);
    for (auto& op : outputs) {
        outputs_.push_back(Output{
            Link_sender{params_, pool_, op.data, op.tokens, op.is_ejection},
            std::vector<Packet_id>(static_cast<std::size_t>(vcs)),
            Round_robin_arbiter{static_cast<int>(inputs_.size())},
            op.is_ejection});
    }
    // Saturated fast path: tokens that change sender state can unblock a
    // sleeping router, so every output sender gets a wake edge back to us.
    for (auto& o : outputs_) o.sender.set_wake_target(this);

    nominated_.resize(inputs_.size());
    vc_req_.resize(static_cast<std::size_t>(vcs));
    out_wants_.resize(outputs_.size());
}

bool Router::is_quiescent() const
{
    if (buffered_ != 0) return blocked_memo_;
    // Only a pending (re)transmission keeps a sender busy on its own; an
    // unacknowledged but fully-transmitted ACK/NACK window is passive (a
    // NACK rewind re-wakes us through the sender's wake target).
    if (params_.fc == Flow_control_kind::ack_nack)
        for (const auto& o : outputs_)
            if (!o.sender.is_quiescent()) return false;
    return true;
}

std::string Router::name() const
{
    return "router" + std::to_string(id_.get());
}

std::string Router::debug_dump() const
{
    const int vcs = params_.total_vcs();
    std::string s = "router" + std::to_string(id_.get()) +
                    " buffered=" + std::to_string(buffered_) + "\n";
    const auto flit_str = [this](Flit_ref ref) {
        const Flit& f = (*pool_)[ref];
        std::string t = "pkt" + std::to_string(f.packet.get()) + " " +
                        std::to_string(f.src.get()) + "->" +
                        std::to_string(f.dst.get()) + " idx " +
                        std::to_string(f.index) + "/" +
                        std::to_string(f.packet_size);
        if (f.mtree != nullptr) t += " mseg " + std::to_string(f.mseg);
        else if (f.route != nullptr)
            t += " hop " + std::to_string(f.route_index) + "/" +
                 std::to_string(f.route->size());
        return t;
    };
    for (std::size_t p = 0; p < inputs_.size(); ++p) {
        const Input& in = inputs_[p];
        if (in.arrival_sink.pending.is_valid())
            s += "  in" + std::to_string(p) +
                 " arrival: " + flit_str(in.arrival_sink.pending) + "\n";
        for (int v = 0; v < vcs; ++v) {
            const Vc_state& vs = in.vcs[static_cast<std::size_t>(v)];
            if (vs.fifo.empty() && !vs.bound && !vs.mcast_bound) continue;
            s += "  in" + std::to_string(p) + " vc" + std::to_string(v) +
                 ":";
            if (vs.bound)
                s += " bound->out" + std::to_string(vs.out_port) + "/vc" +
                     std::to_string(vs.out_vc);
            if (vs.mcast_bound) {
                s += " mcast(pkt" + std::to_string(vs.mcast_owner.get()) +
                     " popped=" + std::to_string(vs.mcast_popped);
                for (const Mcast_branch& b : vs.mcast_branches)
                    s += " [out" + std::to_string(b.out_port) + "/vc" +
                         std::to_string(b.out_vc) +
                         " taken=" + std::to_string(b.taken) +
                         (b.done ? " done]" : "]");
                s += ")";
            }
            s += "\n";
            for (std::size_t i = 0; i < vs.fifo.size(); ++i)
                s += "    [" + std::to_string(i) + "] " +
                     flit_str(vs.fifo[i]) + "\n";
        }
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const Output& out = outputs_[o];
        std::string line;
        for (int v = 0; v < vcs; ++v) {
            const Packet_id owner =
                out.vc_owner[static_cast<std::size_t>(v)];
            if (owner.is_valid())
                line += " vc" + std::to_string(v) + ":pkt" +
                        std::to_string(owner.get());
            if (!out.sender.can_send(v))
                line += " vc" + std::to_string(v) + ":!send";
        }
        if (!line.empty())
            s += "  out" + std::to_string(o) +
                 (out.is_ejection ? " (ej)" : "") + ":" + line + "\n";
    }
    return s;
}

std::optional<Router::Request> Router::classify(Input& in, int vc)
{
    Vc_state& vs = in.vcs[static_cast<std::size_t>(vc)];
    // Multicast-bound VCs advance only through the multicast sub-phase.
    if (vs.mcast_bound) return std::nullopt;
    // Memo hit: same head flit (fifo unchanged) against an unchanged
    // output — the previous verdict still holds. The multicast sub-phase
    // (phase 1b) may have consumed the output's one-send-per-cycle budget
    // before we classify, so a verdict computed here can reflect the
    // transient sent_this_cycle_ state; that is safe because begin_cycle()
    // bumps the sender's state_gen when it resets a consumed budget, which
    // invalidates any memo taken under it on the very next step.
    if (vs.memo_fifo_gen == vs.fifo_gen) {
        if (vs.memo_out_port < 0) return std::nullopt; // memo: fifo empty
        const Output& o =
            outputs_[static_cast<std::size_t>(vs.memo_out_port)];
        if (vs.memo_out_gen == o.owner_gen + o.sender.state_gen()) {
            if (vs.memo_ready) return vs.memo_req;
            return std::nullopt;
        }
    }

    if (vs.fifo.empty()) {
        vs.memo_fifo_gen = vs.fifo_gen;
        vs.memo_out_port = -1;
        return std::nullopt;
    }
    const Flit& f = (*pool_)[vs.fifo.front()];

    int out_port = 0;
    int out_vc = 0;
    if (is_head(f.kind)) {
        if (f.route == nullptr || f.route_index >= f.route->size()) {
            if (f.mtree != nullptr && f.route != nullptr) {
                // Fork-parked multicast head: the sub-phase replicates it;
                // unicast allocation must never pop it. Memoized like an
                // empty fifo — the memo clears when the sub-phase pops.
                vs.memo_fifo_gen = vs.fifo_gen;
                vs.memo_out_port = -1;
                return std::nullopt;
            }
            throw std::logic_error{"Router: head flit without route"};
        }
        const Hop& hop = (*f.route)[f.route_index];
        out_port = hop.out_port;
        out_vc = params_.effective_vc(f.cls, hop.out_vc);
    } else {
        if (!vs.bound)
            throw std::logic_error{"Router: body flit with no binding"};
        out_port = vs.out_port;
        out_vc = vs.out_vc;
    }
    if (out_port >= static_cast<int>(outputs_.size()))
        throw std::logic_error{"Router: route references bad output port"};

    const Output& o = outputs_[static_cast<std::size_t>(out_port)];
    bool ready = true;
    // Wormhole ownership: a head may claim an output VC only when free.
    if (is_head(f.kind) &&
        o.vc_owner[static_cast<std::size_t>(out_vc)].is_valid())
        ready = false;
    else if (!o.sender.can_send(out_vc))
        ready = false;

    vs.memo_fifo_gen = vs.fifo_gen;
    vs.memo_out_port = out_port;
    vs.memo_out_gen = o.owner_gen + o.sender.state_gen();
    vs.memo_ready = ready;
    if (!ready) return std::nullopt;
    vs.memo_req = Request{out_port, out_vc};
    return vs.memo_req;
}

bool Router::step_multicast(Cycle now)
{
    mcast_consumed_ = 0;
    bool moved = false;
    const int vcs = params_.total_vcs();
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        Input& in = inputs_[i];
        if (in.occupancy == 0) continue;
        for (int v = 0; v < vcs; ++v) {
            Vc_state& vs = in.vcs[static_cast<std::size_t>(v)];
            if (vs.fifo.empty() && !vs.mcast_bound) continue;

            if (!vs.mcast_bound) {
                // Bind when a fork-parked head reaches the front: segment
                // hops exhausted with children left. Binding claims
                // nothing — each branch claims its output VC with its own
                // head copy, below.
                const Flit& f = (*pool_)[vs.fifo.front()];
                if (!is_head(f.kind) || f.mtree == nullptr ||
                    f.route == nullptr || f.route_index < f.route->size())
                    continue;
                const Mcast_segment& seg = f.mtree->segments[f.mseg];
                NOC_ASSERT(seg.children.size() >= 2,
                           "Router: fork-parked flit with no branches");
                vs.mcast_bound = true;
                vs.mcast_owner = f.packet;
                vs.mcast_branches.clear();
                vs.mcast_popped = 0;
                for (const std::uint32_t child : seg.children) {
                    const Hop& h0 = f.mtree->segments[child].hops.front();
                    const auto ov = static_cast<std::uint16_t>(
                        params_.effective_vc(f.cls, h0.out_vc));
                    vs.mcast_branches.push_back(
                        Mcast_branch{h0.out_port, ov, child, 0, false});
                }
                ++mcast_forks_;
                if (probe_ != nullptr)
                    probe_->on_multicast_fork(
                        probe_shard_, now, id_, vs.fifo.front(),
                        static_cast<std::uint16_t>(seg.children.size()));
            }

            // Advance every branch cursor that has a buffered flit and a
            // willing output. Branches are independent: a blocked sibling
            // never holds another back (the deadlock-freedom argument in
            // the header comment rests on this).
            bool vc_moved = false;
            for (Mcast_branch& b : vs.mcast_branches) {
                if (b.done) continue;
                const std::size_t idx = b.taken - vs.mcast_popped;
                if (idx >= vs.fifo.size()) continue; // not yet arrived
                const Flit_ref ref = vs.fifo[idx];
                Output& out = outputs_[b.out_port];
                const bool head_copy = b.taken == 0;
                if (head_copy &&
                    out.vc_owner[b.out_vc].is_valid())
                    continue; // output VC still owned by another packet
                if (!out.sender.can_send(b.out_vc)) continue;

                const Flit_ref copy = pool_->acquire_uninitialized();
                (*pool_)[copy] = (*pool_)[ref];
                Flit& c = (*pool_)[copy];
                const Route& chops =
                    c.mtree->segments[b.seg].hops;
                c.mseg = static_cast<std::uint16_t>(b.seg);
                c.dst = c.mtree->segments[b.seg].dst;
                c.vc = b.out_vc;
                if (head_copy) {
                    c.route = &chops;
                    c.route_index = 1; // hop 0 executed here, at the fork
                    out.vc_owner[b.out_vc] = c.packet;
                    ++out.owner_gen;
                }
                if (is_tail(c.kind)) {
                    out.vc_owner[b.out_vc] = Packet_id::invalid();
                    ++out.owner_gen;
                    b.done = true;
                }
                out.sender.send(copy);
                ++flits_routed_;
                ++mcast_copies_;
                ++b.taken;
                if (probe_ != nullptr)
                    probe_->on_hop(probe_shard_, now, id_, copy);
                vc_moved = true;
            }

            // Free the prefix every branch has taken; the upstream slot is
            // genuinely available again only then.
            std::uint32_t min_taken = ~0u;
            bool all_done = true;
            for (const Mcast_branch& b : vs.mcast_branches) {
                min_taken = std::min(min_taken, b.taken);
                all_done = all_done && b.done;
            }
            while (vs.mcast_popped < min_taken) {
                const Flit_ref front = vs.fifo.pop();
                ++vs.fifo_gen;
                --buffered_;
                --in.occupancy;
                const auto freed_vc = (*pool_)[front].vc;
                pool_->release(front);
                ++vs.mcast_popped;
                if (params_.fc == Flow_control_kind::credit)
                    in.port.tokens->write(
                        Fc_token{Fc_token::Kind::credit, freed_vc, 0, 0});
                vc_moved = true;
            }
            if (all_done && vs.mcast_popped == min_taken) {
                vs.mcast_bound = false;
                vs.mcast_owner = Packet_id::invalid();
                vs.mcast_branches.clear();
                vs.mcast_popped = 0;
            }

            if (vc_moved) {
                moved = true;
                mcast_consumed_ |= 1ull << i;
                break; // one multicast VC per input per cycle
            }
        }
    }
    return moved;
}

void Router::step(Cycle now)
{
    blocked_memo_ = false;
    // Phase 1: reverse-channel tokens.
    for (auto& o : outputs_) o.sender.begin_cycle();

    // Phase 1b: multicast fork replication (input- and output-priority
    // over unicast; see the header comment). Sends here consume the
    // senders' one-send-per-cycle budget, which phase 2a observes through
    // can_send()/state_gen like any other sender state change.
    bool moved = step_multicast(now);

    // Phase 2a: each input nominates one VC (GT priority, then round-robin).
    const int vcs = params_.total_vcs();
    const bool gt_enabled = params_.enable_gt;
    auto& nominated = nominated_;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        Input& in = inputs_[i];
        Nomination& nom = nominated[i];
        nom.vc = -1;
        if (in.occupancy == 0) continue; // nothing buffered: no nominee
        if (mcast_consumed_ & (1ull << i)) continue; // forked this cycle
        // Dedicated GT VC wins unconditionally when ready.
        if (gt_enabled) {
            if (auto req = classify(in, params_.gt_vc())) {
                nom = {params_.gt_vc(), *req};
                continue;
            }
        }
        std::uint64_t ready = 0;
        for (int v = 0; v < vcs; ++v) {
            if (gt_enabled && v == params_.gt_vc()) continue;
            if (const auto req = classify(in, v)) {
                ready |= 1ull << v;
                vc_req_[static_cast<std::size_t>(v)] = *req;
            }
        }
        const int v = in.vc_arb.pick_mask(ready);
        if (v >= 0) nom = {v, vc_req_[static_cast<std::size_t>(v)]};
    }

    // Phase 2b: each output grants one nominee; GT has absolute priority.
    // Each input nominates at most one (VC, output), so an input appears in
    // exactly one output's nominee mask and double grants are impossible.
    for (auto& w : out_wants_) w = 0;
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        if (nominated[i].vc >= 0)
            out_wants_[static_cast<std::size_t>(nominated[i].req.out_port)] |=
                1ull << i;
    for (std::size_t op = 0; op < outputs_.size(); ++op) {
        std::uint64_t wants = out_wants_[op];
        if (wants == 0) continue;
        Output& out = outputs_[op];
        if (gt_enabled) {
            // GT nominees (if any) preempt best-effort ones. Skipped whole
            // when GT is off: no flit can carry Traffic_class::gt then, and
            // the head-flit scan costs a pool load per nominee per cycle.
            std::uint64_t gt_wants = 0;
            for (std::uint64_t m = wants; m != 0; m &= m - 1) {
                const int i = std::countr_zero(m);
                const auto& nom = nominated[static_cast<std::size_t>(i)];
                const Flit& f =
                    (*pool_)[inputs_[static_cast<std::size_t>(i)]
                                 .vcs[static_cast<std::size_t>(nom.vc)]
                                 .fifo.front()];
                if (f.cls == Traffic_class::gt) gt_wants |= 1ull << i;
            }
            if (gt_wants != 0) wants = gt_wants;
        }
        const int winner = out.in_arb.pick_mask(wants);
        if (winner < 0) continue;

        // Switch traversal: move the handle, mutate the pooled flit in
        // place (we are its unique owner — see arch/flit.h).
        Input& in = inputs_[static_cast<std::size_t>(winner)];
        const Nomination& nom = nominated[static_cast<std::size_t>(winner)];
        Vc_state& vs = in.vcs[static_cast<std::size_t>(nom.vc)];
        const Flit_ref ref = vs.fifo.pop();
        ++vs.fifo_gen; // a new head (or empty): this VC's memo is stale
        Flit& f = (*pool_)[ref];
        --buffered_;
        --in.occupancy;
        ++flits_routed_;
        if (probe_ != nullptr) probe_->on_hop(probe_shard_, now, id_, ref);
        moved = true;

        if (is_head(f.kind)) {
            vs.bound = true;
            vs.out_port = static_cast<std::uint16_t>(nom.req.out_port);
            vs.out_vc = static_cast<std::uint16_t>(nom.req.out_vc);
            out.vc_owner[static_cast<std::size_t>(nom.req.out_vc)] = f.packet;
            ++out.owner_gen;
            ++f.route_index;
        }
        if (is_tail(f.kind)) {
            vs.bound = false;
            out.vc_owner[static_cast<std::size_t>(nom.req.out_vc)] =
                Packet_id::invalid();
            ++out.owner_gen;
        }
        const auto freed_vc = f.vc; // VC the flit occupied in our buffer
        f.vc = static_cast<std::uint16_t>(nom.req.out_vc);
        out.sender.send(ref);

        // Return a credit upstream for the freed buffer slot.
        if (params_.fc == Flow_control_kind::credit)
            in.port.tokens->write(
                Fc_token{Fc_token::Kind::credit, freed_vc, 0, 0});
    }

    // Phase 2c: ACK/NACK outputs put one (re)transmission on the wire.
    for (auto& o : outputs_) o.sender.end_cycle();

    // Phase 3: arrivals (after allocation, so flits wait >= 1 cycle). The
    // input-channel sinks parked them at the previous commit — the commit
    // that woke us — one slot per input.
    bool arrived = false;
    for (auto& in : inputs_) {
        if (!in.arrival_sink.pending.is_valid()) continue;
        const Flit_ref ref =
            std::exchange(in.arrival_sink.pending, Flit_ref{});
        arrived |= deliver_arrival(in, ref);
    }

    // Phase 4: ON/OFF stop masks reflect post-arrival occupancy.
    if (params_.fc == Flow_control_kind::on_off) {
        for (auto& in : inputs_) {
            std::uint32_t mask = 0;
            for (int v = 0; v < vcs; ++v)
                if (in.vcs[static_cast<std::size_t>(v)].fifo.free_slots() <=
                    static_cast<std::size_t>(in.port.onoff_margin))
                    mask |= 1u << v;
            in.port.tokens->write(
                Fc_token{Fc_token::Kind::on_off_mask, 0, mask, 0});
        }
    }

    // Saturated fast path: nothing moved, nothing arrived, nothing pending
    // on the wire, yet flits are buffered — every head is blocked until an
    // external event (flit or state-changing token). Record the memo and
    // arm the senders' token wake edges; is_quiescent() will deschedule us.
    if (buffered_ != 0 && !moved && !arrived) {
        blocked_memo_ = true;
        if (params_.fc == Flow_control_kind::ack_nack)
            for (const auto& o : outputs_)
                if (!o.sender.is_quiescent()) {
                    blocked_memo_ = false;
                    break;
                }
        if (blocked_memo_) ++blocked_sleeps_;
    }
    if (blocked_memo_ != senders_armed_) {
        for (auto& o : outputs_) o.sender.set_wake_on_token(blocked_memo_);
        senders_armed_ = blocked_memo_;
    }
}

void Router::Arrival_sink::deliver(const Flit_ref& ref)
{
    // One slot suffices: the delivery wakes the owning router, whose next
    // step drains the slot before this channel can commit another value.
    NOC_ASSERT(!pending.is_valid(), "Router: arrival slot overrun");
    pending = ref;
}

bool Router::deliver_arrival(Input& in, Flit_ref ref)
{
    if (params_.fc == Flow_control_kind::ack_nack) {
        // The wire flit is an owned copy of the upstream retransmission
        // slot (see Link_sender::transmit_from_window): keep it on accept,
        // release it on drop.
        auto& fifo = in.vcs[0].fifo;
        const Flit& f = (*pool_)[ref];
        // A corrupted wire copy (injected transient fault) is treated like
        // a failed checksum: drop and NACK, and the go-back-N window
        // retransmits the clean original — the §3 ACK/NACK recovery story.
        if (!f.corrupted && f.link_seq == in.expected_seq && !fifo.full()) {
            fifo.push(ref);
            ++in.vcs[0].fifo_gen;
            ++buffered_;
            ++in.occupancy;
            in.port.tokens->write(Fc_token{Fc_token::Kind::ack, 0, 0,
                                           in.expected_seq});
            ++in.expected_seq;
            return true;
        }
        // Drop and ask the sender to rewind to what we expect.
        pool_->release(ref);
        in.port.tokens->write(
            Fc_token{Fc_token::Kind::nack, 0, 0, in.expected_seq});
        return false;
    }
    const auto vc = (*pool_)[ref].vc;
    NOC_ASSERT(vc < in.vcs.size(), "Router: arriving flit has bad VC");
    auto& fifo = in.vcs[vc].fifo;
    // Always-on guard (not NOC_ASSERT): an overflow here means link-level
    // flow control was violated — e.g. an ON/OFF margin smaller than the
    // round trip — and must surface as an error, not corrupt the ring.
    if (fifo.full())
        throw std::logic_error{
            "Router: input VC overflow — flow control violated"};
    fifo.push(ref);
    ++in.vcs[vc].fifo_gen;
    ++buffered_;
    ++in.occupancy;
    return true;
}

std::uint64_t Router::buffer_writes() const
{
    std::uint64_t n = 0;
    for (const auto& in : inputs_)
        for (const auto& vs : in.vcs) n += vs.fifo.write_count();
    return n;
}

std::uint64_t Router::buffer_reads() const
{
    std::uint64_t n = 0;
    for (const auto& in : inputs_)
        for (const auto& vs : in.vcs) n += vs.fifo.read_count();
    return n;
}

std::size_t Router::input_vc_occupancy(int port, int vc) const
{
    return inputs_.at(static_cast<std::size_t>(port))
        .vcs.at(static_cast<std::size_t>(vc))
        .fifo.size();
}

std::size_t Router::total_occupancy() const
{
    std::size_t n = 0;
    for (const auto& in : inputs_)
        for (const auto& vs : in.vcs) n += vs.fifo.size();
    return n;
}

} // namespace noc
