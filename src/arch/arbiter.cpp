#include "arch/arbiter.h"

#include <stdexcept>

namespace noc {

Round_robin_arbiter::Round_robin_arbiter(int size) : size_{size}
{
    if (size <= 0)
        throw std::invalid_argument{"Round_robin_arbiter: size <= 0"};
}

int Round_robin_arbiter::pick(const std::vector<bool>& requests)
{
    if (static_cast<int>(requests.size()) != size_)
        throw std::invalid_argument{"Round_robin_arbiter: size mismatch"};
    for (int i = 0; i < size_; ++i) {
        const int idx = (next_ + i) % size_;
        if (requests[static_cast<std::size_t>(idx)]) {
            next_ = (idx + 1) % size_;
            return idx;
        }
    }
    return -1;
}

Fixed_priority_arbiter::Fixed_priority_arbiter(int size) : size_{size}
{
    if (size <= 0)
        throw std::invalid_argument{"Fixed_priority_arbiter: size <= 0"};
}

int Fixed_priority_arbiter::pick(const std::vector<bool>& requests) const
{
    if (static_cast<int>(requests.size()) != size_)
        throw std::invalid_argument{"Fixed_priority_arbiter: size mismatch"};
    for (int i = 0; i < size_; ++i)
        if (requests[static_cast<std::size_t>(i)]) return i;
    return -1;
}

} // namespace noc
