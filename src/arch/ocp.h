// OCP-lite transaction layer.
//
// §3: "many NoCs support standard protocols (e.g., OCP, AHB, AXI ...) at the
// outer edge"; ×pipes NIs speak OCP 2.0 point-to-point. This module models
// the transaction semantics that matter to the network: command, burst
// length, the request/response packet sizes they map to, and a closed-loop
// master that keeps a bounded number of outstanding transactions.
#pragma once

#include "arch/traffic_source.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace noc {

enum class Ocp_cmd : std::uint8_t { read, write };

struct Ocp_transaction {
    Ocp_cmd cmd = Ocp_cmd::read;
    std::uint64_t addr = 0;
    std::uint32_t burst_words = 1; ///< data beats (32-bit words)
};

/// Flits in the request packet: one header flit plus serialized write data.
[[nodiscard]] int ocp_request_flits(const Ocp_transaction& t,
                                    int flit_width_bits,
                                    int word_bits = 32);

/// Flits in the response: read data (header + payload) or a 1-flit write ack.
[[nodiscard]] int ocp_response_flits(const Ocp_transaction& t,
                                     int flit_width_bits,
                                     int word_bits = 32);

/// Closed-loop OCP master: issues reads/writes to a set of slave cores,
/// bounded by `max_outstanding`; wire its `notify_response` to the owning
/// NI's delivery listener. Round-trip latencies are exact because both the
/// network and the target NI preserve per-(master, slave) ordering.
class Ocp_master_source final : public Traffic_source {
public:
    struct Params {
        std::vector<Core_id> slaves;
        int max_outstanding = 4;
        Cycle think_time = 0;      ///< min cycles between issues
        double read_fraction = 0.7;
        std::uint32_t min_burst_words = 1;
        std::uint32_t max_burst_words = 8;
        int flit_width_bits = 32;
        Flow_id flow{};
        std::uint64_t seed = 1;
    };

    explicit Ocp_master_source(Params p);

    [[nodiscard]] std::optional<Packet_desc> poll(Cycle now) override;

    /// Call when a response packet from `slave` completes at this master.
    void notify_response(Core_id slave, Cycle now);

    [[nodiscard]] int outstanding() const { return outstanding_; }
    [[nodiscard]] std::uint64_t transactions_issued() const
    {
        return issued_;
    }
    [[nodiscard]] std::uint64_t transactions_completed() const
    {
        return completed_;
    }
    /// Round-trip latency (issue -> response tail), cycles.
    [[nodiscard]] const Accumulator& round_trip() const { return rtt_; }

private:
    Params p_;
    Rng rng_;
    int outstanding_ = 0;
    Cycle next_issue_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    Accumulator rtt_;
    std::unordered_map<Core_id, std::deque<Cycle>> issue_times_;
};

} // namespace noc
