// Input-queued wormhole router (Fig. 1a) with optional virtual channels.
//
// Microarchitecture, per cycle (single step() call, order matters):
//   1. output units consume reverse-channel tokens (credits / masks / acks);
//   2. separable two-stage allocation: each input port nominates one ready
//      VC (round-robin), each output port grants one nominee (round-robin,
//      GT traffic has absolute priority); granted flits traverse the
//      crossbar, update wormhole bindings, and return a credit upstream;
//   3. newly arrived flits are written into input VC FIFOs (so a flit
//      spends at least one full cycle in the router: hop latency =
//      1 router + link pipeline cycles);
//   4. ON/OFF inputs publish their stop mask.
//
// Wormhole state: each input VC binds to an (output port, output VC) from
// head to tail; each output VC is owned by one packet from head to tail, so
// packets never interleave flits within a VC (§3 wormhole switching).
#pragma once

#include "arch/arbiter.h"
#include "arch/buffer.h"
#include "arch/link_sender.h"
#include "sim/kernel.h"

#include <memory>
#include <vector>

namespace noc {

struct Router_input_port {
    Flit_channel* data = nullptr;   ///< incoming flits
    Token_channel* tokens = nullptr;///< reverse channel to the sender
    /// ON/OFF stop threshold (free slots at which we assert OFF). Must cover
    /// the flits in flight over the round trip: 2 * channel latency.
    int onoff_margin = 2;
};

struct Router_output_port {
    Flit_channel* data = nullptr;   ///< outgoing flits
    Token_channel* tokens = nullptr;///< reverse channel from the receiver
    bool is_ejection = false;       ///< ejection ports always accept
};

class Router final : public Component {
public:
    Router(Switch_id id, const Network_params& params,
           std::vector<Router_input_port> inputs,
           std::vector<Router_output_port> outputs);

    void step(Cycle now) override;
    /// Quiescent when every input VC FIFO is empty and every output sender
    /// has nothing pending (no ACK/NACK backlog). Wormhole bindings and
    /// credit counters are passive state: they need no cycles to persist,
    /// and any event that can change them (flit or token arrival) travels
    /// over an input channel that re-wakes the router. The last ON/OFF mask
    /// published before sleeping is a pure function of this idle state, so
    /// it stays valid upstream while the router is descheduled.
    [[nodiscard]] bool is_quiescent() const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] Switch_id id() const { return id_; }
    [[nodiscard]] int input_count() const
    {
        return static_cast<int>(inputs_.size());
    }
    [[nodiscard]] int output_count() const
    {
        return static_cast<int>(outputs_.size());
    }

    // --- observability ------------------------------------------------------
    [[nodiscard]] std::uint64_t flits_routed() const { return flits_routed_; }
    [[nodiscard]] std::uint64_t buffer_writes() const;
    [[nodiscard]] std::uint64_t buffer_reads() const;
    [[nodiscard]] std::size_t input_vc_occupancy(int port, int vc) const;
    [[nodiscard]] const Link_sender& output_sender(int port) const
    {
        return outputs_[static_cast<std::size_t>(port)].sender;
    }
    /// Total flits currently buffered in this router.
    [[nodiscard]] std::size_t total_occupancy() const;

private:
    struct Vc_state {
        std::unique_ptr<Bounded_fifo<Flit>> fifo;
        bool bound = false;
        std::uint16_t out_port = 0;
        std::uint16_t out_vc = 0;
    };
    struct Input {
        Router_input_port port;
        std::vector<Vc_state> vcs;
        Round_robin_arbiter vc_arb;
        std::uint32_t expected_seq = 0; // ack_nack receiver
    };
    struct Output {
        Link_sender sender;
        std::vector<Packet_id> vc_owner; // wormhole ownership per VC
        Round_robin_arbiter in_arb;
        bool is_ejection = false;
    };

    /// The (out_port, out_vc) the head flit of (input, vc) wants, or
    /// nullopt when the VC cannot advance this cycle.
    struct Request {
        int out_port = -1;
        int out_vc = -1;
    };
    [[nodiscard]] std::optional<Request> classify(const Input& in,
                                                  int vc) const;

    void deliver_arrival(Input& in, Cycle now);

    struct Nomination {
        int vc = -1;
        Request req;
    };

    Switch_id id_;
    Network_params params_;
    std::vector<Input> inputs_;
    std::vector<Output> outputs_;
    // Per-cycle allocation scratch, hoisted out of step(): this is the
    // simulator's hottest loop and a heap allocation per router per cycle
    // dominated its cost.
    std::vector<Nomination> nominated_;
    std::vector<bool> vc_ready_;
    std::vector<Request> vc_req_; ///< classify result cache, per VC
    std::vector<bool> wants_;
    /// Flits buffered across all input VC FIFOs, maintained incrementally
    /// so the kernel's per-step is_quiescent() check is O(1).
    std::uint32_t buffered_ = 0;
    std::uint64_t flits_routed_ = 0;
};

} // namespace noc
