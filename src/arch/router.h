// Input-queued wormhole router (Fig. 1a) with optional virtual channels.
//
// Microarchitecture, per cycle (single step() call, order matters):
//   1. output units consume reverse-channel tokens (credits / masks / acks);
//   1b. multicast sub-phase: a head parked at a fork of its destination-set
//      tree (topology/multicast.h) binds the input VC to the fork's
//      branches, and from then on each branch copies the buffered flits AT
//      ITS OWN PACE — per-branch cursors into the VC ring, one uniquely-
//      owned pool copy per flit per branch (arch/flit.h). A branch claims
//      its output VC with its head copy and releases it with its tail
//      copy, independently of its siblings; the input slot frees (credit /
//      stop-mask update) once the SLOWEST branch has taken it. Branches
//      are never coupled to each other — only to the fork's input channel
//      — which is exactly the in->child dependency the branching-CDG
//      admission (analyze_multicast_deadlock) models; an atomic
//      all-branches-ready handshake would add sibling wait-for edges the
//      CDG does not check and deadlocks under shallow buffers. The absorb
//      condition this rests on (a lagging branch can always reach its
//      tail) is that a multicast packet fits the input buffer, enforced at
//      injection (Ni::enqueue_multicast). An input whose sub-phase moved
//      anything is skipped by this cycle's unicast allocation, and branch
//      sends count against the one-send-per-output budget, so multicast
//      has input- and output-priority over unicast (scanned in
//      input-then-VC index order: deterministic under every schedule);
//   2. separable two-stage allocation: each input port nominates one ready
//      VC (round-robin), each output port grants one nominee (round-robin,
//      GT traffic has absolute priority); granted flits traverse the
//      crossbar, update wormhole bindings, and return a credit upstream;
//   3. newly arrived flits are written into input VC FIFOs (so a flit
//      spends at least one full cycle in the router: hop latency =
//      1 router + link pipeline cycles);
//   4. ON/OFF inputs publish their stop mask.
//
// Wormhole state: each input VC binds to an (output port, output VC) from
// head to tail; each output VC is owned by one packet from head to tail, so
// packets never interleave flits within a VC (§3 wormhole switching).
//
// Storage: VC buffers are power-of-two rings of Flit_ref into the
// per-system Flit_pool — a switch traversal moves a 4-byte handle and
// mutates the pooled flit in place (route_index, vc) instead of copying the
// struct at every hop. See arch/flit.h for the ownership rules.
#pragma once

#include "arch/arbiter.h"
#include "arch/flit_pool.h"
#include "arch/link_sender.h"
#include "arch/ring_fifo.h"
#include "sim/kernel.h"

#include <optional>
#include <utility>
#include <vector>

namespace noc {

class Probe;

struct Router_input_port {
    Flit_channel* data = nullptr;   ///< incoming flits
    Token_channel* tokens = nullptr;///< reverse channel to the sender
    /// ON/OFF stop threshold (free slots at which we assert OFF). Must cover
    /// the flits in flight over the round trip: 2 * channel latency.
    int onoff_margin = 2;
};

struct Router_output_port {
    Flit_channel* data = nullptr;   ///< outgoing flits
    Token_channel* tokens = nullptr;///< reverse channel from the receiver
    bool is_ejection = false;       ///< ejection ports always accept
};

class Router final : public Component {
public:
    Router(Switch_id id, const Network_params& params, Flit_pool* pool,
           std::vector<Router_input_port> inputs,
           std::vector<Router_output_port> outputs);

    void step(Cycle now) override;
    /// Two ways to sleep:
    ///   * empty — every input VC ring is empty and every output sender's
    ///     send pointer has caught up with its window. Wormhole bindings
    ///     and credit counters are passive state; any event that can change
    ///     them (flit arrival, NACK) re-wakes the router.
    ///   * blocked (the saturated fast path) — flits are buffered but the
    ///     last step forwarded nothing, accepted nothing and has no pending
    ///     (re)transmissions, i.e. every occupied VC's head is blocked on
    ///     an output VC owner, a credit, a stop mask or window space. None
    ///     of those can change without an external event: an arriving flit
    ///     wakes us through the data channel's wake edge, and the output
    ///     senders are armed (wake_on_token) so any state-changing token
    ///     re-arms us. A step in between would be a bit-identical no-op —
    ///     allocation with all-blocked heads grants nothing and does not
    ///     advance arbiter state.
    /// The last ON/OFF mask published before sleeping is a pure function of
    /// the (frozen) occupancy, so it stays valid upstream while descheduled.
    [[nodiscard]] bool is_quiescent() const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] Switch_id id() const { return id_; }
    [[nodiscard]] int input_count() const
    {
        return static_cast<int>(inputs_.size());
    }
    [[nodiscard]] int output_count() const
    {
        return static_cast<int>(outputs_.size());
    }

    // --- observability ------------------------------------------------------
    /// Attach a hop probe (arch/probe.h): called once per crossbar
    /// traversal with this router's shard id. Non-owning; nullptr detaches.
    /// Wired system-wide by Noc_system::attach_probe.
    void set_probe(Probe* probe, std::uint32_t shard)
    {
        probe_ = probe;
        probe_shard_ = shard;
    }
    [[nodiscard]] std::uint64_t flits_routed() const { return flits_routed_; }
    /// Head-flit fork events executed at this switch (one per packet per
    /// fork; exact integers, merged into Network_stats at sequential
    /// points by Noc_system).
    [[nodiscard]] std::uint64_t multicast_forks() const
    {
        return mcast_forks_;
    }
    /// Branch pool copies made by this switch's forks (all flit kinds).
    [[nodiscard]] std::uint64_t multicast_copies() const
    {
        return mcast_copies_;
    }
    [[nodiscard]] std::uint64_t buffer_writes() const;
    [[nodiscard]] std::uint64_t buffer_reads() const;
    [[nodiscard]] std::size_t input_vc_occupancy(int port, int vc) const;
    [[nodiscard]] const Link_sender& output_sender(int port) const
    {
        return outputs_[static_cast<std::size_t>(port)].sender;
    }
    /// Total flits currently buffered in this router.
    [[nodiscard]] std::size_t total_occupancy() const;
    /// Number of steps that ended with the blocked-router memo set (flits
    /// buffered, nothing movable). Diagnostic only: it counts memo
    /// *decisions*, not descheduled cycles, so the reference schedule —
    /// which ignores quiescence and re-evaluates the memo every blocked
    /// cycle — legitimately reports a larger value than the gated one for
    /// the same bit-identical run. Keep it out of equivalence snapshots.
    [[nodiscard]] std::uint64_t blocked_sleep_entries() const
    {
        return blocked_sleeps_;
    }
    /// Human-readable snapshot of every occupied input VC (buffered flits,
    /// wormhole/multicast bindings with per-branch cursors) and every
    /// output (VC owners, per-VC can_send verdicts). The complement of
    /// Trace_probe::dump for a wedged-network post-mortem: the trace shows
    /// the last movements, this shows the frozen wait-for state those
    /// movements left behind. Call only at a sequential point.
    [[nodiscard]] std::string debug_dump() const;

    // --- fault-injection support (arch/fault_plan.h) -----------------------
    // May only be called at a sequential point between kernel runs, by the
    // fault engine in Noc_system.

    /// Mutable output sender: the fault engine fails dead links and resets
    /// ACK/NACK windows on surviving ones.
    [[nodiscard]] Link_sender& output_sender_mut(int port)
    {
        return outputs_[static_cast<std::size_t>(port)].sender;
    }
    /// ACK/NACK receiver state: next link sequence expected on `port`.
    [[nodiscard]] std::uint32_t expected_seq(int port) const
    {
        return inputs_[static_cast<std::size_t>(port)].expected_seq;
    }
    /// The parked arrival of input `port` (invalid when none).
    [[nodiscard]] Flit_ref arrival_pending(int port) const
    {
        return inputs_[static_cast<std::size_t>(port)].arrival_sink.pending;
    }
    /// Remove and return the parked arrival of `port` (invalid when none).
    /// Used before an ACK/NACK window reset: the parked copy counts as
    /// in flight and must be cleared with the wire.
    [[nodiscard]] Flit_ref take_arrival(int port)
    {
        return std::exchange(
            inputs_[static_cast<std::size_t>(port)].arrival_sink.pending,
            Flit_ref{});
    }
    /// Packet owning (output port, vc); invalid when the VC is free.
    [[nodiscard]] Packet_id output_vc_owner(int port, int vc) const
    {
        return outputs_[static_cast<std::size_t>(port)]
            .vc_owner[static_cast<std::size_t>(vc)];
    }

    /// Visit every flit handle this router currently buffers — parked
    /// arrival slots and input VC rings — as f(int input_port, Flit_ref).
    template<typename F> void for_each_buffered(F&& f) const
    {
        for (std::size_t p = 0; p < inputs_.size(); ++p) {
            const Input& in = inputs_[p];
            if (in.arrival_sink.pending.is_valid())
                f(static_cast<int>(p), in.arrival_sink.pending);
            for (const Vc_state& vs : in.vcs)
                for (std::size_t i = 0; i < vs.fifo.size(); ++i)
                    f(static_cast<int>(p), vs.fifo[i]);
        }
    }

    /// Remove every buffered flit of a doomed packet and clear the
    /// wormhole state those packets held. `doomed(Packet_id)` decides;
    /// `on_drop(Flit_ref)` counts and releases the handle; per flit purged
    /// from a VC ring or arrival slot, `credit(int input_port, int vc)`
    /// lets Noc_system restore the upstream credit whose return will never
    /// come (no-op for schemes without credits).
    template<typename DoomedFn, typename DropFn, typename CreditFn>
    void purge_doomed(DoomedFn&& doomed, DropFn&& on_drop, CreditFn&& credit)
    {
        for (std::size_t p = 0; p < inputs_.size(); ++p) {
            Input& in = inputs_[p];
            if (in.arrival_sink.pending.is_valid() &&
                doomed((*pool_)[in.arrival_sink.pending].packet)) {
                const Flit_ref ref =
                    std::exchange(in.arrival_sink.pending, Flit_ref{});
                const int vc = (*pool_)[ref].vc;
                on_drop(ref);
                credit(static_cast<int>(p), vc);
            }
            for (std::size_t v = 0; v < in.vcs.size(); ++v) {
                Vc_state& vs = in.vcs[v];
                // Unbind before clearing owners: the pid is still recorded.
                const Packet_id bound_owner =
                    vs.bound ? outputs_[vs.out_port].vc_owner[vs.out_vc]
                             : Packet_id::invalid();
                if (bound_owner.is_valid() && doomed(bound_owner)) {
                    vs.bound = false;
                    ++vs.fifo_gen;
                }
                if (vs.mcast_bound && doomed(vs.mcast_owner)) {
                    for (const Mcast_branch& b : vs.mcast_branches) {
                        Packet_id& owner =
                            outputs_[b.out_port].vc_owner[b.out_vc];
                        if (owner == vs.mcast_owner) {
                            owner = Packet_id::invalid();
                            ++outputs_[b.out_port].owner_gen;
                        }
                    }
                    vs.mcast_bound = false;
                    vs.mcast_owner = Packet_id::invalid();
                    vs.mcast_branches.clear();
                    vs.mcast_popped = 0;
                    ++vs.fifo_gen;
                }
                for (std::size_t i = 0; i < vs.fifo.size();) {
                    if (doomed((*pool_)[vs.fifo[i]].packet)) {
                        on_drop(vs.fifo.erase_at(i));
                        ++vs.fifo_gen;
                        --buffered_;
                        --in.occupancy;
                        credit(static_cast<int>(p), static_cast<int>(v));
                    } else {
                        ++i;
                    }
                }
            }
        }
        for (Output& out : outputs_)
            for (Packet_id& owner : out.vc_owner)
                if (owner.is_valid() && doomed(owner)) {
                    owner = Packet_id::invalid();
                    ++out.owner_gen;
                }
    }

private:
    /// The (out_port, out_vc) the head flit of (input, vc) wants, or
    /// nullopt when the VC cannot advance this cycle.
    struct Request {
        int out_port = -1;
        int out_vc = -1;
    };

    /// One branch of an input VC's multicast binding: the (output port,
    /// effective VC) the branch claims with its head copy, the child
    /// segment its copies continue on, and the branch's private cursor
    /// into the bound packet (how many of its flits this branch has
    /// copied). `done` marks a sent tail copy — the branch released its
    /// output VC and takes no further flits.
    struct Mcast_branch {
        std::uint16_t out_port = 0;
        std::uint16_t out_vc = 0;
        std::uint32_t seg = 0;
        std::uint32_t taken = 0;
        bool done = false;
    };

    struct Vc_state {
        Ring_fifo<Flit_ref> fifo;
        bool bound = false;
        std::uint16_t out_port = 0;
        std::uint16_t out_vc = 0;
        /// Multicast wormhole binding: set when a fork-parked head reaches
        /// the front, cleared when every branch has sent its tail copy and
        /// the packet's flits have left the ring. While set, the sub-phase
        /// advances each branch cursor independently and unicast
        /// allocation skips the VC. The bound packet's flits stay in the
        /// fifo until the slowest branch has taken them; `mcast_popped`
        /// counts how many have left.
        bool mcast_bound = false;
        Packet_id mcast_owner{};
        std::vector<Mcast_branch> mcast_branches;
        std::uint32_t mcast_popped = 0;
        /// Bumped on every push/pop of `fifo` (a new head may want a
        /// different output; a pop may also rewrite the binding).
        std::uint64_t fifo_gen = 0;
        // --- classify memo (see Router::classify) --------------------------
        /// fifo_gen snapshot the memo was taken at; ~0 = no memo.
        std::uint64_t memo_fifo_gen = ~0ull;
        /// Output-state snapshot (owner_gen + sender state_gen) the memo's
        /// verdict depends on; only meaningful when memo_out_port >= 0.
        std::uint64_t memo_out_gen = 0;
        /// Output the memo'd head wants; -1 = memo says "fifo empty".
        std::int32_t memo_out_port = -1;
        bool memo_ready = false;
        Request memo_req; ///< valid when memo_ready
    };
    /// Per-input push sink: the input data channel delivers each arriving
    /// handle at the commit that makes it visible (identically under all
    /// kernel schedules) into a single-slot buffer private to this sink,
    /// consumed by the next step's phase 3. One slot suffices: every
    /// delivery wakes this router, whose step drains the slot before the
    /// next commit can refill it. Keeping the slot per input (rather than
    /// a shared arrival list) makes delivery race-free under the sharded
    /// kernel, where different input channels may commit on different
    /// shard threads.
    struct Arrival_sink final : Value_sink<Flit_ref> {
        Flit_ref pending{};
        void deliver(const Flit_ref& ref) override;
    };

    struct Input {
        Router_input_port port;
        std::vector<Vc_state> vcs;
        Round_robin_arbiter vc_arb;
        std::uint32_t expected_seq = 0; // ack_nack receiver
        /// Flits buffered across this input's VCs; lets nomination skip
        /// empty inputs without touching their rings.
        std::uint32_t occupancy = 0;
        Arrival_sink arrival_sink;
    };
    struct Output {
        Link_sender sender;
        std::vector<Packet_id> vc_owner; // wormhole ownership per VC
        Round_robin_arbiter in_arb;
        bool is_ejection = false;
        /// Bumped on every vc_owner mutation; owner_gen + sender.state_gen()
        /// is the output-state snapshot the classify memo keys on.
        std::uint64_t owner_gen = 0;
    };

    /// Memoized allocation verdict for (input, vc): recomputes only when
    /// the VC's fifo changed or the output it targets changed state
    /// (arrival / credit / mask / window / wormhole-owner change). At
    /// saturation most VCs are blocked on an unchanged output for many
    /// consecutive cycles, so this removes the ~3 redundant classify
    /// walks per router-cycle the ROADMAP called out.
    [[nodiscard]] std::optional<Request> classify(Input& in, int vc);

    /// Returns true when a flit was accepted into a VC ring.
    bool deliver_arrival(Input& in, Flit_ref ref);

    /// Phase 1b: advance at most one multicast-bound (or fork-parked) VC
    /// per input — each of its branches may copy one flit at its own
    /// cursor (see the header comment). Returns true when anything moved;
    /// inputs that moved are recorded in mcast_consumed_ so phase 2a
    /// skips them.
    bool step_multicast(Cycle now);

    struct Nomination {
        int vc = -1;
        Request req;
    };

    Switch_id id_;
    Network_params params_;
    Flit_pool* pool_;
    std::vector<Input> inputs_;
    std::vector<Output> outputs_;
    // Per-cycle allocation scratch, hoisted out of step(): this is the
    // simulator's hottest loop, and both a heap allocation per cycle and
    // vector<bool> request tracking dominated its cost at saturation.
    // Request sets are uint64 bitmasks (ports and VCs are capped at 64,
    // enforced in the constructor) arbitrated with pick_mask.
    std::vector<Nomination> nominated_;
    std::vector<Request> vc_req_;          ///< classify results, per VC
    std::vector<std::uint64_t> out_wants_; ///< nominee mask, per output
    // Arrivals live in the per-input sink slots until phase 3 consumes
    // them, in input-index order. Cross-input order within a cycle is
    // unobservable — arrivals land in per-input rings and the
    // reverse-channel tokens they emit use per-input channels — so the
    // kernel schedules may deliver in different orders without diverging.
    /// Flits buffered across all input VC FIFOs, maintained incrementally
    /// so the kernel's per-step is_quiescent() check is O(1).
    std::uint32_t buffered_ = 0;
    /// Blocked-router memo: set at the end of a step that moved nothing,
    /// accepted nothing and left no transmissions pending while flits are
    /// buffered (see is_quiescent). Output senders are armed to wake us on
    /// any state-changing token while the memo stands.
    bool blocked_memo_ = false;
    /// Mirror of the senders' wake_on_token flags, so the common
    /// no-memo-to-no-memo transition skips the arming loop.
    bool senders_armed_ = false;
    std::uint64_t blocked_sleeps_ = 0;
    std::uint64_t flits_routed_ = 0;
    std::uint64_t mcast_forks_ = 0;
    std::uint64_t mcast_copies_ = 0;
    /// Inputs consumed by this cycle's multicast sub-phase (bitmask).
    std::uint64_t mcast_consumed_ = 0;
    /// Hop probe (null = none; the common case pays one branch per routed
    /// flit). probe_shard_ is this router's kernel shard, so a per-shard
    /// probe (Trace_probe) writes only its own slice — race-free under the
    /// sharded schedule.
    Probe* probe_ = nullptr;
    std::uint32_t probe_shard_ = 0;
};

} // namespace noc
