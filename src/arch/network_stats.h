// Run-wide measurement: packet bookkeeping, latency statistics, and the
// warmup / measurement / drain phase protocol used by every experiment.
//
// Only packets *created* inside the measurement window contribute to the
// reported statistics — the standard open-loop methodology (warm the
// network up, measure in steady state, then drain the marked packets).
#pragma once

#include "common/stats.h"
#include "common/types.h"

#include <unordered_map>
#include <vector>

namespace noc {

class Network_stats {
public:
    /// [start, end): packets born in this window are measured.
    void set_measurement_window(Cycle start, Cycle end);
    [[nodiscard]] bool in_measurement(Cycle now) const
    {
        return now >= window_start_ && now < window_end_;
    }

    void on_packet_created(Flow_id flow, Cycle now, bool measured);
    void on_packet_injected(Cycle now);
    void on_packet_delivered(Flow_id flow, std::uint32_t size_flits,
                             Cycle birth, Cycle inject, Cycle now,
                             bool measured);

    // --- totals (all packets, any phase) ------------------------------------
    [[nodiscard]] std::uint64_t packets_created() const { return created_; }
    [[nodiscard]] std::uint64_t packets_delivered() const
    {
        return delivered_;
    }
    [[nodiscard]] std::uint64_t packets_in_flight() const
    {
        return created_ - delivered_;
    }

    // --- measured-window results --------------------------------------------
    [[nodiscard]] std::uint64_t measured_created() const
    {
        return measured_created_;
    }
    [[nodiscard]] std::uint64_t measured_delivered() const
    {
        return measured_delivered_;
    }
    [[nodiscard]] std::uint64_t measured_in_flight() const
    {
        return measured_created_ - measured_delivered_;
    }
    [[nodiscard]] std::uint64_t measured_flits_delivered() const
    {
        return measured_flits_;
    }
    /// Packet latency: delivery - creation (includes source queueing).
    [[nodiscard]] const Accumulator& packet_latency() const
    {
        return packet_latency_;
    }
    /// Network latency: delivery - injection (excludes source queueing).
    [[nodiscard]] const Accumulator& network_latency() const
    {
        return network_latency_;
    }
    [[nodiscard]] const Accumulator& flow_latency(Flow_id f) const;
    [[nodiscard]] std::uint64_t flow_flits_delivered(Flow_id f) const;

    /// Accepted throughput over the measurement window, flits/cycle (divide
    /// by core count for the per-node rate).
    [[nodiscard]] double accepted_flits_per_cycle() const;

private:
    Cycle window_start_ = 0;
    Cycle window_end_ = 0;
    std::uint64_t created_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t measured_created_ = 0;
    std::uint64_t measured_delivered_ = 0;
    std::uint64_t measured_flits_ = 0;
    Accumulator packet_latency_;
    Accumulator network_latency_;
    std::unordered_map<Flow_id, Accumulator> flow_latency_;
    std::unordered_map<Flow_id, std::uint64_t> flow_flits_;
};

} // namespace noc
