// Run-wide measurement: packet bookkeeping, latency statistics, and the
// warmup / measurement / drain phase protocol used by every experiment.
//
// Only packets *created* inside the measurement window contribute to the
// reported statistics — the standard open-loop methodology (warm the
// network up, measure in steady state, then drain the marked packets).
//
// Threading (the sharded kernel, sim/kernel.h): recording is SHARDED. Each
// kernel shard gets its own Slot, and every NI records through its shard's
// slot, so phase-1 recording never shares a counter across threads. All
// counters are exact integers (Exact_stat for latencies), so the aggregate
// queries — which merge the slots on demand, at sequential points — are
// bit-identical to a single-threaded run regardless of how deliveries
// interleaved across shards.
#pragma once

#include "common/stats.h"
#include "common/types.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace noc {

class Network_stats {
public:
    /// One shard's recording surface. NIs hold a pointer to their shard's
    /// slot; only that shard's thread writes it during a run.
    class Slot {
    public:
        void on_packet_created(Flow_id flow, Cycle now, bool measured);
        void on_packet_injected(Cycle now);
        void on_packet_delivered(Flow_id flow, std::uint32_t size_flits,
                                 Cycle birth, Cycle inject, Cycle now,
                                 bool measured);
        /// A packet removed from the network by a fault (permanent link
        /// failure purge). Flit counts are reported separately via
        /// on_flits_dropped — drops at different stages lose different
        /// numbers of flits.
        void on_packet_dropped(bool measured)
        {
            ++dropped_;
            if (measured) ++measured_dropped_;
        }
        void on_flits_dropped(std::uint64_t n) { dropped_flits_ += n; }
        /// A packet offered to a destination no surviving route reaches
        /// (counts as dropped too — see Ni::enqueue_packet).
        void on_packet_unreachable(bool measured, std::uint32_t flits)
        {
            on_packet_dropped(measured);
            ++unreachable_;
            if (measured) ++measured_unreachable_;
            dropped_flits_ += flits;
        }
        /// A multicast packet offered at its source NI. The source also
        /// calls on_packet_created once PER MEMBER of the destination set,
        /// so packets_in_flight stays consistent with per-destination
        /// delivery; this records the packet itself and its fan-out as
        /// exact integers the sharded merge keeps bit-identical.
        void on_multicast_created(std::uint32_t destinations)
        {
            ++mcast_packets_;
            mcast_destinations_ += destinations;
        }
        /// One multicast destination delivery (a tail ejected at a member).
        void on_multicast_delivered() { ++mcast_deliveries_; }

    private:
        friend class Network_stats;
        std::uint64_t created_ = 0;
        std::uint64_t delivered_ = 0;
        std::uint64_t measured_created_ = 0;
        std::uint64_t measured_delivered_ = 0;
        std::uint64_t measured_flits_ = 0;
        std::uint64_t dropped_ = 0;
        std::uint64_t measured_dropped_ = 0;
        std::uint64_t unreachable_ = 0;
        std::uint64_t measured_unreachable_ = 0;
        std::uint64_t dropped_flits_ = 0;
        std::uint64_t mcast_packets_ = 0;
        std::uint64_t mcast_destinations_ = 0;
        std::uint64_t mcast_deliveries_ = 0;
        Exact_stat packet_latency_;
        Exact_stat network_latency_;
        std::unordered_map<Flow_id, Exact_stat> flow_latency_;
        std::unordered_map<Flow_id, std::uint64_t> flow_flits_;
    };

    Network_stats();

    /// Grow to `n` recording slots (never shrinks below existing ones;
    /// slot addresses are stable). Called by the system builder before
    /// handing slots to NIs.
    void ensure_slots(std::size_t n);
    [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
    [[nodiscard]] Slot& slot(std::size_t i) { return *slots_.at(i); }

    /// [start, end): packets born in this window are measured. Read-only
    /// during a run (set between runs), so shards may query concurrently.
    void set_measurement_window(Cycle start, Cycle end);
    /// Truncate an open window at `now` (live saturation early-stop):
    /// packet marking stops immediately and rate denominators —
    /// accepted_flits_per_cycle() — divide by the cycles actually
    /// measured. Sequential points only, like set_measurement_window.
    void close_measurement_window(Cycle now)
    {
        if (now > window_start_ && now < window_end_) window_end_ = now;
    }
    [[nodiscard]] Cycle measurement_window_cycles() const
    {
        return window_end_ - window_start_;
    }
    [[nodiscard]] bool in_measurement(Cycle now) const
    {
        return now >= window_start_ && now < window_end_;
    }

    // --- convenience single-slot recording (tests, sequential users) --------
    void on_packet_created(Flow_id flow, Cycle now, bool measured)
    {
        slots_[0]->on_packet_created(flow, now, measured);
    }
    void on_packet_injected(Cycle now) { slots_[0]->on_packet_injected(now); }
    void on_packet_delivered(Flow_id flow, std::uint32_t size_flits,
                             Cycle birth, Cycle inject, Cycle now,
                             bool measured)
    {
        slots_[0]->on_packet_delivered(flow, size_flits, birth, inject, now,
                                       measured);
    }

    // --- totals (all packets, any phase; merged over slots) -----------------
    [[nodiscard]] std::uint64_t packets_created() const;
    [[nodiscard]] std::uint64_t packets_delivered() const;
    [[nodiscard]] std::uint64_t packets_dropped() const;
    [[nodiscard]] std::uint64_t packets_unreachable() const;
    [[nodiscard]] std::uint64_t flits_dropped() const;
    /// Dropped packets are accounted for: they will never be delivered, so
    /// drain loops that wait for in-flight to reach zero still terminate
    /// after a fault.
    [[nodiscard]] std::uint64_t packets_in_flight() const
    {
        return packets_created() - packets_delivered() - packets_dropped();
    }

    // --- measured-window results (merged over slots) ------------------------
    [[nodiscard]] std::uint64_t measured_created() const;
    [[nodiscard]] std::uint64_t measured_delivered() const;
    [[nodiscard]] std::uint64_t measured_dropped() const;
    [[nodiscard]] std::uint64_t measured_unreachable() const;
    [[nodiscard]] std::uint64_t measured_in_flight() const
    {
        return measured_created() - measured_delivered() - measured_dropped();
    }
    [[nodiscard]] std::uint64_t measured_flits_delivered() const;
    /// Packet latency: delivery - creation (includes source queueing).
    [[nodiscard]] Exact_stat packet_latency() const;
    /// Network latency: delivery - injection (excludes source queueing).
    [[nodiscard]] Exact_stat network_latency() const;
    [[nodiscard]] Exact_stat flow_latency(Flow_id f) const;
    [[nodiscard]] std::uint64_t flow_flits_delivered(Flow_id f) const;

    /// Accepted throughput over the measurement window, flits/cycle (divide
    /// by core count for the per-node rate).
    [[nodiscard]] double accepted_flits_per_cycle() const;

    // --- multicast / collective bookkeeping (topology/multicast.h) ----------

    /// Multicast packets offered at source NIs (merged over slots).
    [[nodiscard]] std::uint64_t multicast_packets() const;
    /// Total destination fan-out of those packets (sum of set sizes).
    [[nodiscard]] std::uint64_t multicast_destinations() const;
    /// Per-destination multicast deliveries (merged over slots). For a
    /// drained run this equals multicast_destinations().
    [[nodiscard]] std::uint64_t multicast_deliveries() const;
    /// Absolute fork-event / branch-copy totals, re-synced from the routers
    /// after each kernel run chunk (the routers own the live counters),
    /// mirroring record_retransmissions.
    void record_multicast_forks(std::uint64_t forks, std::uint64_t copies)
    {
        mcast_forks_ = forks;
        mcast_copies_ = copies;
    }
    [[nodiscard]] std::uint64_t multicast_forks() const
    {
        return mcast_forks_;
    }
    [[nodiscard]] std::uint64_t multicast_copies() const
    {
        return mcast_copies_;
    }

    // --- fault / recovery bookkeeping (arch/fault_plan.h) -------------------
    // Written only at sequential points by the Noc_system fault engine, so
    // these live on the stats object itself rather than in the slots.

    /// One permanent-failure → reroute-complete episode.
    struct Recovery_record {
        Cycle failed_at = invalid_cycle;
        Cycle recovered_at = invalid_cycle; ///< reroute published
        std::vector<Link_id> links;         ///< links that died
        std::vector<Switch_id> switches;    ///< routers that died (if any)
        /// (src, dst) pairs with no surviving route after the reroute.
        std::vector<std::pair<Core_id, Core_id>> unreachable_pairs;
        std::uint64_t packets_dropped = 0; ///< purged at the failure point
        /// Purged packets rescheduled for end-to-end replay instead of
        /// being dropped (Fault_plan::replay).
        std::uint64_t packets_replayed = 0;
        /// True when the union deadlock check admitted an epoch-based live
        /// switchover (recovered_at == failed_at + reroute_latency exactly);
        /// false when this episode took the drain path.
        bool live_switchover = false;
        [[nodiscard]] Cycle time_to_recover() const
        {
            return recovered_at - failed_at;
        }
    };

    void record_corrupted_flit() { ++corrupted_flits_; }
    [[nodiscard]] std::uint64_t corrupted_flits() const
    {
        return corrupted_flits_;
    }
    /// Absolute retransmission total, re-synced from the link senders after
    /// each kernel run chunk (the senders own the live counters).
    void record_retransmissions(std::uint64_t total)
    {
        retransmissions_ = total;
    }
    [[nodiscard]] std::uint64_t retransmissions() const
    {
        return retransmissions_;
    }
    void record_recovery(Recovery_record r)
    {
        recoveries_.push_back(std::move(r));
    }
    [[nodiscard]] const std::vector<Recovery_record>& recoveries() const
    {
        return recoveries_;
    }
    /// Packets rescued by end-to-end NI replay (cumulative; sequential
    /// points only, like the other fault counters).
    void record_replays(std::uint64_t n) { packets_replayed_ += n; }
    [[nodiscard]] std::uint64_t packets_replayed() const
    {
        return packets_replayed_;
    }

private:
    Cycle window_start_ = 0;
    Cycle window_end_ = 0;
    /// unique_ptr so slot addresses survive ensure_slots growth.
    std::vector<std::unique_ptr<Slot>> slots_;
    // --- sequential-only fault bookkeeping ---
    std::uint64_t corrupted_flits_ = 0;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t packets_replayed_ = 0;
    // --- sequential-only multicast bookkeeping (router re-sync) ---
    std::uint64_t mcast_forks_ = 0;
    std::uint64_t mcast_copies_ = 0;
    std::vector<Recovery_record> recoveries_;
};

} // namespace noc
