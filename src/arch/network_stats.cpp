#include "arch/network_stats.h"

#include <stdexcept>

namespace noc {

Network_stats::Network_stats()
{
    slots_.push_back(std::make_unique<Slot>());
}

void Network_stats::ensure_slots(std::size_t n)
{
    while (slots_.size() < n) slots_.push_back(std::make_unique<Slot>());
}

void Network_stats::set_measurement_window(Cycle start, Cycle end)
{
    if (end < start)
        throw std::invalid_argument{"Network_stats: bad window"};
    window_start_ = start;
    window_end_ = end;
}

void Network_stats::Slot::on_packet_created(Flow_id flow, Cycle now,
                                            bool measured)
{
    (void)flow;
    (void)now;
    ++created_;
    if (measured) ++measured_created_;
}

void Network_stats::Slot::on_packet_injected(Cycle now)
{
    (void)now;
}

void Network_stats::Slot::on_packet_delivered(Flow_id flow,
                                              std::uint32_t size_flits,
                                              Cycle birth, Cycle inject,
                                              Cycle now, bool measured)
{
    ++delivered_;
    if (!measured) return;
    ++measured_delivered_;
    measured_flits_ += size_flits;
    const std::uint64_t pkt_lat = now - birth;
    const std::uint64_t net_lat = now - inject;
    packet_latency_.add(pkt_lat);
    network_latency_.add(net_lat);
    if (flow.is_valid()) {
        flow_latency_[flow].add(pkt_lat);
        flow_flits_[flow] += size_flits;
    }
}

std::uint64_t Network_stats::packets_created() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->created_;
    return n;
}

std::uint64_t Network_stats::packets_delivered() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->delivered_;
    return n;
}

std::uint64_t Network_stats::packets_dropped() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->dropped_;
    return n;
}

std::uint64_t Network_stats::packets_unreachable() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->unreachable_;
    return n;
}

std::uint64_t Network_stats::flits_dropped() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->dropped_flits_;
    return n;
}

std::uint64_t Network_stats::measured_dropped() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->measured_dropped_;
    return n;
}

std::uint64_t Network_stats::measured_unreachable() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->measured_unreachable_;
    return n;
}

std::uint64_t Network_stats::measured_created() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->measured_created_;
    return n;
}

std::uint64_t Network_stats::measured_delivered() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->measured_delivered_;
    return n;
}

std::uint64_t Network_stats::measured_flits_delivered() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->measured_flits_;
    return n;
}

Exact_stat Network_stats::packet_latency() const
{
    Exact_stat m;
    for (const auto& s : slots_) m.merge(s->packet_latency_);
    return m;
}

Exact_stat Network_stats::network_latency() const
{
    Exact_stat m;
    for (const auto& s : slots_) m.merge(s->network_latency_);
    return m;
}

Exact_stat Network_stats::flow_latency(Flow_id f) const
{
    Exact_stat m;
    for (const auto& s : slots_) {
        const auto it = s->flow_latency_.find(f);
        if (it != s->flow_latency_.end()) m.merge(it->second);
    }
    return m;
}

std::uint64_t Network_stats::flow_flits_delivered(Flow_id f) const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) {
        const auto it = s->flow_flits_.find(f);
        if (it != s->flow_flits_.end()) n += it->second;
    }
    return n;
}

std::uint64_t Network_stats::multicast_packets() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->mcast_packets_;
    return n;
}

std::uint64_t Network_stats::multicast_destinations() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->mcast_destinations_;
    return n;
}

std::uint64_t Network_stats::multicast_deliveries() const
{
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s->mcast_deliveries_;
    return n;
}

double Network_stats::accepted_flits_per_cycle() const
{
    const Cycle span = window_end_ - window_start_;
    if (span == 0) return 0.0;
    return static_cast<double>(measured_flits_delivered()) /
           static_cast<double>(span);
}

} // namespace noc
