#include "arch/network_stats.h"

#include <stdexcept>

namespace noc {

void Network_stats::set_measurement_window(Cycle start, Cycle end)
{
    if (end < start)
        throw std::invalid_argument{"Network_stats: bad window"};
    window_start_ = start;
    window_end_ = end;
}

void Network_stats::on_packet_created(Flow_id flow, Cycle now, bool measured)
{
    (void)flow;
    (void)now;
    ++created_;
    if (measured) ++measured_created_;
}

void Network_stats::on_packet_injected(Cycle now)
{
    (void)now;
}

void Network_stats::on_packet_delivered(Flow_id flow,
                                        std::uint32_t size_flits, Cycle birth,
                                        Cycle inject, Cycle now, bool measured)
{
    ++delivered_;
    if (!measured) return;
    ++measured_delivered_;
    measured_flits_ += size_flits;
    const auto pkt_lat = static_cast<double>(now - birth);
    const auto net_lat = static_cast<double>(now - inject);
    packet_latency_.add(pkt_lat);
    network_latency_.add(net_lat);
    if (flow.is_valid()) {
        flow_latency_[flow].add(pkt_lat);
        flow_flits_[flow] += size_flits;
    }
}

const Accumulator& Network_stats::flow_latency(Flow_id f) const
{
    static const Accumulator empty;
    const auto it = flow_latency_.find(f);
    return it == flow_latency_.end() ? empty : it->second;
}

std::uint64_t Network_stats::flow_flits_delivered(Flow_id f) const
{
    const auto it = flow_flits_.find(f);
    return it == flow_flits_.end() ? 0 : it->second;
}

double Network_stats::accepted_flits_per_cycle() const
{
    const Cycle span = window_end_ - window_start_;
    if (span == 0) return 0.0;
    return static_cast<double>(measured_flits_) / static_cast<double>(span);
}

} // namespace noc
