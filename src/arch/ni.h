// Network interface (Fig. 1b).
//
// "The main role of the Network Interfaces is to convert the bus protocol
// used by the Processing Elements to the network protocol used by the
// switches... NIs convert transaction requests/responses into packets and
// vice versa. Packets are then serialized into a sequence of flits." (§3)
//
// One Ni object bundles the initiator and target roles of one core:
//   initiator side — polls a Traffic_source, packetizes, looks the route up
//     in its LUT (source routing), serializes flits into the injection link
//     under link-level flow control, and gates GT flits by the TDMA slot
//     table (Æthereal §3);
//   target side — reassembles ejected flits, reports deliveries, and can
//     generate a response packet after a configurable service latency
//     (modelling an OCP slave; the request flit carries the expected
//     response size).
#pragma once

#include "arch/link_sender.h"
#include "arch/network_stats.h"
#include "arch/traffic_source.h"
#include "topology/route.h"

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

namespace noc {

class Ni final : public Component {
public:
    Ni(Core_id core, const Network_params& params, const Route_set* routes,
       Flit_channel* inject_data, Token_channel* inject_tokens,
       Flit_channel* eject_data, Network_stats* stats);

    void step(Cycle now) override;
    /// Quiescent when idle(), the injection sender has no retransmission
    /// backlog, and the traffic source (if any) has no poll due next cycle
    /// (see Traffic_source::next_poll_at; a future injection is covered by
    /// a timed kernel wake requested during step()). Credit returns and
    /// ejected flits arrive over channels that re-wake this NI; work
    /// enqueued from outside the simulation re-arms it via request_wake().
    [[nodiscard]] bool is_quiescent() const override;
    [[nodiscard]] std::string name() const override;

    /// Install the packet generator (may be null: pure target core).
    void set_source(std::unique_ptr<Traffic_source> source);

    /// Target-side service latency before a response is injected (cycles).
    void set_reply_latency(Cycle latency) { reply_latency_ = latency; }

    /// TDMA slot table: slot_owner[s] is the GT connection allowed to inject
    /// in slot s (invalid id = slot free / BE only). Length must equal
    /// params.slot_table_length.
    void set_slot_table(std::vector<Connection_id> slot_owner);

    /// Observer invoked when a packet addressed to this core completes
    /// (tail delivered). Used by closed-loop masters (see arch/ocp.h).
    void set_delivery_listener(std::function<void(const Flit&, Cycle)> fn)
    {
        on_delivery_ = std::move(fn);
    }

    /// Enqueue one packet directly (bypassing the source) — used by tests
    /// and by transaction adapters.
    void enqueue_packet(const Packet_desc& desc, Cycle now);

    [[nodiscard]] Core_id core() const { return core_; }
    [[nodiscard]] std::size_t source_queue_flits() const
    {
        return queue_.size() + gt_queue_.size();
    }
    [[nodiscard]] std::uint64_t flits_injected() const
    {
        return sender_.flits_sent();
    }
    [[nodiscard]] bool idle() const
    {
        return queue_.empty() && gt_queue_.empty() &&
               pending_replies_.empty() && reassembly_.empty();
    }

private:
    void poll_source(Cycle now);
    void release_replies(Cycle now);
    void inject(Cycle now);
    void eject(Cycle now);

    Core_id core_;
    Network_params params_;
    const Route_set* routes_;
    Link_sender sender_;
    Flit_channel* eject_data_;
    Network_stats* stats_;
    std::unique_ptr<Traffic_source> source_;
    /// BE source queue (open loop). GT flits have their own queue so a
    /// best-effort backlog can never head-of-line block a reserved slot.
    std::deque<Flit> queue_;
    std::deque<Flit> gt_queue_;
    std::vector<Connection_id> slot_owner_;
    Cycle reply_latency_ = 0;
    std::deque<std::pair<Cycle, Packet_desc>> pending_replies_;
    std::unordered_map<Packet_id, std::uint32_t> reassembly_;
    std::function<void(const Flit&, Cycle)> on_delivery_;
    std::uint64_t next_packet_seq_ = 0;
    /// Source promise refreshed each step: no poll due next cycle.
    bool source_may_sleep_ = false;
};

} // namespace noc
