// Network interface (Fig. 1b).
//
// "The main role of the Network Interfaces is to convert the bus protocol
// used by the Processing Elements to the network protocol used by the
// switches... NIs convert transaction requests/responses into packets and
// vice versa. Packets are then serialized into a sequence of flits." (§3)
//
// One Ni object bundles the initiator and target roles of one core:
//   initiator side — polls a Traffic_source, packetizes, looks the route up
//     in its LUT (source routing), serializes flits into the injection link
//     under link-level flow control, and gates GT flits by the TDMA slot
//     table (Æthereal §3);
//   target side — reassembles ejected flits, reports deliveries, and can
//     generate a response packet after a configurable service latency
//     (modelling an OCP slave; the request flit carries the expected
//     response size).
//
// Flits are pooled (arch/flit.h) and materialized LATE: enqueue_packet
// queues one compact Pending_packet record per packet, and a pool slot is
// acquired only at the cycle a flit actually enters the injection link.
// An open-loop backlog therefore costs queue records, not pool slots — the
// pool stays sized by what the NETWORK holds (buffers, channel stages,
// retransmission windows), so its slab stays cache-resident at saturation
// and its high-water mark reads as the hardware buffer-provisioning cost.
// eject() releases each delivered handle.
#pragma once

#include "arch/flit_pool.h"
#include "arch/link_sender.h"
#include "arch/network_stats.h"
#include "arch/ring_fifo.h"
#include "arch/traffic_source.h"
#include "topology/route.h"

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace noc {

class Mcast_route_set; // topology/multicast.h

class Ni final : public Component {
public:
    Ni(Core_id core, const Network_params& params, Flit_pool* pool,
       const Route_set* routes, Flit_channel* inject_data,
       Token_channel* inject_tokens, Flit_channel* eject_data,
       Network_stats* stats);

    void step(Cycle now) override;
    /// Sleep decision, recomputed at the end of every step (see
    /// compute_sleep in ni.cpp). Two ways to sleep:
    ///   * drained — queues empty, sender caught up, source quiet (future
    ///     polls / reply releases covered by timed kernel wakes);
    ///   * injection-blocked (saturated fast path) — a BE backlog exists
    ///     but this step neither sent nor enqueued anything, i.e. the head
    ///     flit is blocked on link-level flow control. The injection
    ///     sender's wake_on_token edge re-arms us on any state-changing
    ///     token; ejected flits and external enqueues re-arm us through the
    ///     eject channel and request_wake() respectively.
    [[nodiscard]] bool is_quiescent() const override;
    [[nodiscard]] std::string name() const override;

    /// Install the packet generator (may be null: pure target core).
    void set_source(std::unique_ptr<Traffic_source> source);

    /// Target-side service latency before a response is injected (cycles).
    void set_reply_latency(Cycle latency) { reply_latency_ = latency; }

    /// TDMA slot table: slot_owner[s] is the GT connection allowed to inject
    /// in slot s (invalid id = slot free / BE only). Length must equal
    /// params.slot_table_length.
    void set_slot_table(std::vector<Connection_id> slot_owner);

    /// Observer invoked when a packet addressed to this core completes
    /// (tail delivered). Used by closed-loop masters (see arch/ocp.h).
    void set_delivery_listener(std::function<void(const Flit&, Cycle)> fn)
    {
        on_delivery_ = std::move(fn);
    }

    /// Enqueue one packet directly (bypassing the source) — used by tests
    /// and by transaction adapters.
    void enqueue_packet(const Packet_desc& desc, Cycle now);

    /// Stats recording slot (defaults to the stats object's slot 0). The
    /// sharded system builder points each NI at its shard's slot so
    /// phase-1 recording never crosses threads (see arch/network_stats.h).
    void set_stats_slot(Network_stats::Slot* slot);

    [[nodiscard]] Core_id core() const { return core_; }
    [[nodiscard]] std::size_t source_queue_flits() const
    {
        return queued_flits_;
    }
    [[nodiscard]] std::uint64_t flits_injected() const
    {
        return sender_.flits_sent();
    }
    /// Flits this NI has taken off its ejection channel (telemetry's
    /// per-NI ejection rate). Exact and schedule-invariant, like
    /// flits_injected().
    [[nodiscard]] std::uint64_t flits_ejected() const
    {
        return flits_ejected_;
    }
    /// Packets awaiting an end-to-end replay ACK (0 unless the replay
    /// protocol is on) — the telemetry replay-pressure gauge.
    [[nodiscard]] std::size_t replay_pending() const
    {
        return awaiting_ack_.size();
    }
    [[nodiscard]] bool idle() const
    {
        return queue_.empty() && gt_queue_.empty() &&
               pending_replies_.empty() && reassembly_.empty() &&
               replay_queue_.empty();
    }

    // --- fault-injection support (arch/fault_plan.h) -----------------------
    // Sequential-point only: called between kernel runs by the Noc_system
    // fault engine, never from inside a step.

    /// Drop-at-enqueue mode (enabled whenever a fault plan is installed):
    /// a packet whose route LUT entry is empty is counted as created,
    /// dropped and unreachable instead of throwing — after a permanent
    /// failure some pairs may be legitimately disconnected.
    void set_fault_tolerant(bool v) { fault_tolerant_ = v; }

    /// Freeze flit materialization while a reroute is in progress. Sources
    /// keep generating (the backlog is queue records, not pool slots) and
    /// ejection continues; only the injection link goes quiet.
    void set_inject_paused(bool paused);

    /// Swap the route LUT after an online reconfiguration. In-flight
    /// packets and the mid-serialization record keep pointers into the
    /// retired set, which the caller keeps alive; rebind_queued_routes()
    /// re-points everything that has not started serializing. Bumps the
    /// route epoch new injections are stamped with (Flit::route_epoch).
    void set_routes(const Route_set* routes);

    /// Route epoch new injections are stamped with (0 until the first
    /// set_routes after construction).
    [[nodiscard]] std::uint16_t route_epoch() const { return epoch_; }

    // --- multicast (topology/multicast.h) ----------------------------------

    /// Install the destination-set trees. Non-owning; may be null (no
    /// multicast traffic). Packets whose Packet_desc::dset is valid are
    /// routed by their set's tree instead of the unicast LUT.
    void set_mcast_routes(const Mcast_route_set* mroutes)
    {
        mroutes_ = mroutes;
    }
    /// Multicast packets this NI has enqueued (telemetry; one per packet,
    /// not per destination). Exact and schedule-invariant.
    [[nodiscard]] std::uint64_t mcast_packets_injected() const
    {
        return mcast_packets_injected_;
    }
    /// Multicast destination deliveries completed AT this NI (one per tail
    /// ejected here). Exact and schedule-invariant.
    [[nodiscard]] std::uint64_t mcast_deliveries() const
    {
        return mcast_deliveries_;
    }

    // --- end-to-end replay protocol (Fault_plan::replay) --------------------
    // The source NI keeps a replay record per injected packet until the
    // destination NI's delivery is acknowledged back to it; packets purged
    // by a permanent failure are re-injected from the record instead of
    // being dropped. ACK collection and replay scheduling happen at
    // sequential points (Noc_system::collect_acks / apply_permanent);
    // releases happen inside step() at a deterministic cycle, so replay
    // runs stay bit-identical across kernel schedules.

    void set_replay_protocol(bool v) { replay_protocol_ = v; }

    /// Destination side: packet ids whose tails this NI delivered since
    /// the last take (cleared by the call).
    [[nodiscard]] std::vector<Packet_id> take_delivered_pids()
    {
        return std::exchange(delivered_pids_, {});
    }

    /// Source side: the destination acknowledged `pid` end to end.
    void ack_packet(Packet_id pid) { awaiting_ack_.erase(pid); }

    /// True when `pid` still has a replay record with attempts left.
    [[nodiscard]] bool can_replay(Packet_id pid,
                                  std::uint32_t max_replays) const
    {
        const auto it = awaiting_ack_.find(pid);
        return it != awaiting_ack_.end() && it->second.attempts < max_replays;
    }
    [[nodiscard]] std::uint32_t replay_attempts(Packet_id pid) const
    {
        const auto it = awaiting_ack_.find(pid);
        return it == awaiting_ack_.end() ? 0 : it->second.attempts;
    }
    /// Forget `pid`'s record (the packet is conclusively dropped).
    void drop_replay_record(Packet_id pid) { awaiting_ack_.erase(pid); }

    /// Re-queue `pid`'s packet at cycle `release` (bumps its attempt
    /// count). The re-injected packet keeps its original id, birth cycle
    /// and measured flag — a replay is the SAME packet, so it is not
    /// re-counted as created.
    void schedule_replay(Packet_id pid, Cycle release);

    /// Router death (arch/fault_plan.h): detach the source, drop every
    /// queued / replay-pending packet through
    /// `on_unreachable(measured, size_flits)`, clear replay state, and
    /// refuse future enqueues (counted created + unreachable). The caller
    /// purges this NI's in-network flits separately via the doom set.
    template<typename DropFn> void power_off(DropFn&& on_unreachable)
    {
        powered_off_ = true;
        source_.reset();
        source_may_sleep_ = true;
        next_source_poll_ = invalid_cycle;
        auto drop_queue = [&](Ring_fifo<Pending_packet>& q) {
            while (!q.empty()) {
                const Pending_packet p = q.pop();
                queued_flits_ -= p.size_flits - p.next_flit;
                if (p.next_flit == 0)
                    on_unreachable(p.measured, p.size_flits);
                // A mid-serialization front was already accounted through
                // the caller's doom set (its flits are in the network).
            }
        };
        drop_queue(queue_);
        drop_queue(gt_queue_);
        for (const auto& [release, pid] : replay_queue_) {
            (void)release;
            const auto it = awaiting_ack_.find(pid);
            if (it != awaiting_ack_.end())
                on_unreachable(it->second.measured, it->second.size_flits);
        }
        replay_queue_.clear();
        awaiting_ack_.clear();
        delivered_pids_.clear();
        pending_replies_.clear();
        reassembly_.clear();
    }
    [[nodiscard]] bool powered_off() const { return powered_off_; }

    /// Mutable injection sender (window resets / credit restores).
    [[nodiscard]] Link_sender& injection_sender() { return sender_; }

    /// Visit the packet this NI is mid-serializing (some flits already in
    /// the network, the rest still queued), if any:
    /// f(Packet_id, Route, dst). Only the BE queue front can be mid-flight
    /// — GT packets are single-flit and leave whole.
    template<typename F> void visit_in_progress(F&& f) const
    {
        if (!queue_.empty() && queue_.front().next_flit > 0) {
            const Pending_packet& p = queue_.front();
            f(p.pid, *p.route, p.dst);
        }
    }

    /// Purge queued and reassembly state of doomed packets. Only the
    /// mid-serialization record can be doomed (its in-network flits are
    /// purged by the caller); `on_drop(pid, measured, remaining_flits)`
    /// reports the flits that will now never materialize.
    template<typename DoomedFn, typename DropFn>
    void purge_doomed(DoomedFn&& doomed, DropFn&& on_drop)
    {
        if (!queue_.empty() && queue_.front().next_flit > 0 &&
            doomed(queue_.front().pid)) {
            const Pending_packet p = queue_.pop();
            queued_flits_ -= p.size_flits - p.next_flit;
            on_drop(p.pid, p.measured, p.size_flits - p.next_flit);
        }
        for (auto it = reassembly_.begin(); it != reassembly_.end();) {
            if (doomed(it->first))
                it = reassembly_.erase(it);
            else
                ++it;
        }
    }

    /// Re-point not-yet-started queued packets at the current LUT after
    /// set_routes(). Packets whose destination became unreachable are
    /// dropped via on_unreachable(measured, size_flits).
    template<typename DropFn>
    void rebind_queued_routes(DropFn&& on_unreachable)
    {
        auto rebind = [&](Ring_fifo<Pending_packet>& q) {
            for (std::size_t i = 0; i < q.size();) {
                Pending_packet& p = q[i];
                if (p.next_flit > 0 || p.mtree != nullptr) {
                    // Mid-flight: keeps its (still valid) old route.
                    // Multicast: routed by tree, not the swapped LUT
                    // (multicast does not compose with fault plans).
                    ++i;
                    continue;
                }
                const Route* route = &routes_->at(core_, p.dst);
                if (route->empty()) {
                    queued_flits_ -= p.size_flits;
                    awaiting_ack_.erase(p.pid); // conclusively undeliverable
                    on_unreachable(p.measured, p.size_flits);
                    (void)q.erase_at(i);
                } else {
                    p.route = route;
                    p.epoch = epoch_;
                    ++i;
                }
            }
        };
        rebind(queue_);
        rebind(gt_queue_);
    }

private:
    /// One enqueued packet awaiting serialization; flit `next_flit` is the
    /// next to materialize into the pool and send.
    struct Pending_packet {
        Core_id dst{};
        std::uint32_t size_flits = 1;
        std::uint32_t reply_flits = 0;
        Traffic_class cls = Traffic_class::request;
        Flow_id flow{};
        Connection_id conn{};
        const Route* route = nullptr;
        Packet_id pid{};
        Cycle birth = invalid_cycle;
        bool measured = false;
        std::uint32_t next_flit = 0;
        std::uint16_t epoch = 0; ///< route epoch stamped on its flits
        /// Multicast tree (nullptr = unicast); `route` then points at its
        /// root segment's hops and flits are stamped with it.
        const Mcast_tree* mtree = nullptr;
    };

    /// Source-side replay record (set_replay_protocol): everything needed
    /// to re-enqueue the packet as ITSELF — original id, birth, measured.
    struct Replay_record {
        Core_id dst{};
        std::uint32_t size_flits = 1;
        std::uint32_t reply_flits = 0;
        Traffic_class cls = Traffic_class::request;
        Flow_id flow{};
        Connection_id conn{};
        Cycle birth = invalid_cycle;
        bool measured = false;
        std::uint32_t attempts = 0;
    };

    void poll_source(Cycle now);
    /// enqueue_packet's multicast arm (desc.dset valid): routes by the
    /// set's tree and counts one creation per destination.
    void enqueue_multicast(const Packet_desc& desc, Cycle now);
    void release_replies(Cycle now);
    void release_replays(Cycle now);
    void inject(Cycle now);
    void eject(Cycle now);
    void compute_sleep(Cycle now);
    /// Acquire a pool slot for packet `p`'s next flit, fill it, and send it
    /// on effective VC `vc`; advances the packet's flit cursor.
    [[nodiscard]] Flit_ref materialize_flit(Pending_packet& p, Cycle now,
                                            int vc);

    Core_id core_;
    Network_params params_;
    Flit_pool* pool_;
    const Route_set* routes_;
    const Mcast_route_set* mroutes_ = nullptr;
    Link_sender sender_;
    Flit_channel* eject_data_;
    Network_stats* stats_;
    Network_stats::Slot* stats_slot_; ///< this NI's recording slot
    std::unique_ptr<Traffic_source> source_;
    /// BE source queue (open loop). GT packets have their own queue so a
    /// best-effort backlog can never head-of-line block a reserved slot.
    Ring_fifo<Pending_packet> queue_{16, /*growable=*/true};
    Ring_fifo<Pending_packet> gt_queue_{8, /*growable=*/true};
    std::size_t queued_flits_ = 0;
    std::vector<Connection_id> slot_owner_;
    Cycle reply_latency_ = 0;
    std::deque<std::pair<Cycle, Packet_desc>> pending_replies_;
    std::unordered_map<Packet_id, std::uint32_t> reassembly_;
    std::function<void(const Flit&, Cycle)> on_delivery_;
    std::uint64_t next_packet_seq_ = 0;
    std::uint64_t flits_ejected_ = 0; ///< see flits_ejected()
    std::uint64_t mcast_packets_injected_ = 0; ///< see accessor
    std::uint64_t mcast_deliveries_ = 0;       ///< see accessor
    /// Source promise refreshed each step: no poll due next cycle.
    bool source_may_sleep_ = false;
    /// Source's promised next poll cycle (valid when source_may_sleep_).
    Cycle next_source_poll_ = invalid_cycle;
    // --- per-step sleep bookkeeping (see compute_sleep) ---
    bool sent_this_step_ = false;
    bool enqueued_this_step_ = false;
    bool may_sleep_ = false;
    // --- fault-injection state (see the public fault block) ---
    bool fault_tolerant_ = false;
    bool inject_paused_ = false;
    bool replay_protocol_ = false;
    bool powered_off_ = false;
    std::uint16_t epoch_ = 0; ///< bumped by set_routes
    /// Replay records by packet id; erased on end-to-end ACK.
    std::unordered_map<Packet_id, Replay_record> awaiting_ack_;
    /// Tails delivered here since the last take_delivered_pids().
    std::vector<Packet_id> delivered_pids_;
    /// Scheduled re-injections, sorted by release cycle (ties keep
    /// insertion = packet-id order, so releases are deterministic).
    std::deque<std::pair<Cycle, Packet_id>> replay_queue_;
};

} // namespace noc
