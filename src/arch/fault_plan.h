// Deterministic fault schedule for live fault injection (§1: "reconfigurable
// NoCs can support component redundancy in a transparent fashion").
//
// A Fault_plan is a pure description of WHAT goes wrong and WHEN: transient
// flit corruptions (one flit on one link, recovered by the ACK/NACK
// go-back-N window when the scheme provides one) and permanent link
// failures (the link dies, in-flight traffic on it is lost, and the system
// reroutes around it online). The plan is applied by Noc_system at
// *reconfiguration points* — the sequential boundaries between kernel
// run() calls (see the threading-model section of sim/kernel.h) — so a
// given plan produces bit-identical results under the reference, gated and
// sharded schedules at any shard count.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <vector>

namespace noc {

class Topology;

/// One scheduled corruption: at the boundary entering cycle `at`, the
/// oldest in-flight flit on `link` (arrival slot first, then wire stages)
/// has its payload marked corrupted. Deterministic no-op when the link is
/// idle at that cycle.
struct Transient_fault {
    Cycle at = 0;
    Link_id link;
};

/// One scheduled permanent failure: at the boundary entering cycle `at`,
/// every link in `links` dies for the rest of the run, and every switch in
/// `switches` dies wholesale — all its incident duplex links are retired
/// and its network interface powers off (pending traffic to/from it is
/// unreachable from then on). `is_region` marks a multi-switch power-off
/// domain (a region event) rather than independent router deaths; the
/// distinction only affects how the failure is reported.
struct Permanent_fault {
    Cycle at = 0;
    std::vector<Link_id> links;
    std::vector<Switch_id> switches;
    bool is_region = false;
};

/// How Noc_system switches routes after a permanent failure.
enum class Recovery_mode : std::uint8_t {
    /// PR 6 behaviour: pause injection, drain every in-flight packet, then
    /// install the failure-aware routes. Always safe, stops the world.
    drain,
    /// Epoch-based live switchover: new injections take the recomputed
    /// routes immediately while old-epoch packets finish on theirs,
    /// admitted by an acyclicity check on the UNION channel-dependency
    /// graph of every route function still in flight
    /// (topology/deadlock.h: analyze_union_deadlock). Falls back to the
    /// drain path for that failure when the union check finds a cycle.
    epoch,
};

/// Shape of a random multi-failure plan (see random_plan below).
struct Random_fault_shape {
    std::uint32_t transient_count = 0;
    std::uint32_t permanent_link_count = 0;
    std::uint32_t router_death_count = 0;
    std::uint32_t region_switch_count = 0;
};

/// Ordered, validated schedule of faults. Build one (or draw a random one
/// with random_plan), hand it to Build_options::fault_plan, and Noc_system
/// executes it. The plan is immutable while a simulation runs — share it
/// across the equivalence runs that must agree bit-for-bit.
class Fault_plan {
public:
    /// Cycles between a permanent failure and the installation of the
    /// recomputed routes — models the detection + path-recomputation time
    /// of the reconfiguration controller. Injection is paused while the
    /// reroute is pending.
    Cycle reroute_latency = 64;

    /// Root for the spanning-tree rank of the post-failure up*/down*
    /// reroute (must stay fixed across failures so successive reroutes
    /// compose deterministically).
    Switch_id reroute_root{0};

    /// Route-switchover policy after a permanent failure. Epoch mode is
    /// the default: it degrades to exactly the drain behaviour whenever
    /// the union deadlock check refuses the live switchover.
    Recovery_mode recovery = Recovery_mode::epoch;

    /// End-to-end NI retransmission: when true, source NIs hold every
    /// injected packet until the destination NI acknowledges delivery, and
    /// packets lost to a permanent failure (stranded-packet purge, router
    /// death) are re-injected after the reroute instead of being dropped —
    /// up to `max_replays` attempts per packet, released
    /// `replay_backoff * attempt` cycles after the recomputed routes
    /// install. Both knobs are deterministic, so replay runs stay
    /// bit-identical across kernel schedules.
    bool replay = false;
    std::uint32_t max_replays = 4;
    Cycle replay_backoff = 8;

    void add_transient(Cycle at, Link_id link)
    {
        transients_.push_back({at, link});
    }
    void add_permanent(Cycle at, std::vector<Link_id> links)
    {
        permanents_.push_back({at, std::move(links), {}, false});
    }
    /// Whole-router death: retires every link incident to `sw` and powers
    /// off its NI.
    void add_router_death(Cycle at, Switch_id sw)
    {
        permanents_.push_back({at, {}, {sw}, false});
    }
    /// Region power-off: every switch in `switches` dies at once (links +
    /// NIs), reported as one region event.
    void add_region_off(Cycle at, std::vector<Switch_id> switches)
    {
        permanents_.push_back({at, {}, std::move(switches), true});
    }

    [[nodiscard]] const std::vector<Transient_fault>& transients() const
    {
        return transients_;
    }
    [[nodiscard]] const std::vector<Permanent_fault>& permanents() const
    {
        return permanents_;
    }
    [[nodiscard]] bool empty() const
    {
        return transients_.empty() && permanents_.empty();
    }

    /// Throws std::invalid_argument on out-of-range link ids, an empty
    /// permanent-failure link set, or a zero reroute latency.
    void validate(const Topology& t) const;

    /// Every cycle at which Noc_system must stop the kernel and apply
    /// events, sorted ascending, deduplicated. Reroute-completion
    /// boundaries (failure cycle + reroute_latency) are included.
    [[nodiscard]] std::vector<Cycle> event_cycles() const;

    /// Seeded random plan: `transient_count` corruptions on random links at
    /// random cycles in [horizon/8, horizon), plus — when `permanent_count`
    /// > 0 — one permanent failure of `permanent_count` distinct random
    /// links at horizon/2. Deterministic in (topology, seed, counts,
    /// horizon).
    [[nodiscard]] static Fault_plan
    random_plan(const Topology& t, std::uint64_t seed,
                std::uint32_t transient_count, std::uint32_t permanent_count,
                Cycle horizon);

    /// Seeded random multi-failure plan. Transients as above; at horizon/2
    /// one permanent event of `permanent_link_count` random links plus
    /// `router_death_count` random router deaths, and — when
    /// `region_switch_count` > 0 — a region power-off of a BFS-grown
    /// connected switch cluster (disjoint from the dead routers) as a
    /// second same-cycle event. Deterministic in (topology, seed, shape,
    /// horizon).
    [[nodiscard]] static Fault_plan
    random_plan(const Topology& t, std::uint64_t seed,
                const Random_fault_shape& shape, Cycle horizon);

private:
    std::vector<Transient_fault> transients_;
    std::vector<Permanent_fault> permanents_;
};

} // namespace noc
