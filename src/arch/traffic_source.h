// Traffic-source interface implemented by the generators in traffic/.
#pragma once

#include "arch/params.h"
#include "common/types.h"

#include <cstdint>
#include <optional>

namespace noc {

/// A packet the source wants to enqueue.
struct Packet_desc {
    Core_id dst{};
    std::uint32_t size_flits = 1;
    Traffic_class cls = Traffic_class::request;
    Flow_id flow{};
    Connection_id conn{};
    /// Response size the target must send back (0 = no response). This is
    /// how read-data/write-ack sizes ride along with a request.
    std::uint32_t reply_flits = 0;
    /// Multicast destination set (topology/multicast.h). Valid = this is a
    /// multicast packet: `dst` is ignored and the NI routes it along the
    /// set's tree, counting one creation/delivery per member. Multicast is
    /// best-effort only (no GT) and composes with neither fault plans nor
    /// the replay protocol.
    Dset_id dset{};
};

/// Polled once per cycle by the owning NI. Implementations hold their own
/// RNG stream so sources are independent and runs deterministic.
class Traffic_source {
public:
    virtual ~Traffic_source() = default;

    /// Return a packet to enqueue this cycle, or nullopt.
    [[nodiscard]] virtual std::optional<Packet_desc> poll(Cycle now) = 0;

    /// Earliest future cycle at which poll() could produce a packet or a
    /// side effect (an RNG draw, a state transition), or invalid_cycle if
    /// that can never happen again (e.g. an exhausted trace). The owning NI
    /// uses this for activity gating: a return > now + 1 promises that
    /// polls in (now, next) would be side-effect-free nullopts, so the NI
    /// may sleep through the gap (with a timed kernel wake at `next`) and a
    /// gated run stays bit-identical to the reference kernel, which does
    /// issue those no-op polls. Sources that draw their RNG every cycle
    /// must keep the default (now + 1: poll me every cycle).
    [[nodiscard]] virtual Cycle next_poll_at(Cycle now) const
    {
        return now + 1;
    }
};

} // namespace noc
