// Pipeline channels — the only communication medium between components.
//
// A Pipeline_channel<T> models `latency` back-to-back registers: a value
// written during step() at cycle t appears at the output during cycle
// t + latency, for exactly one cycle. Because readers can only observe
// values committed in earlier cycles, simulation results are independent of
// the order in which the kernel steps components (see sim/kernel.h).
//
// Channels participate in the kernel's activity gating (kernel.h) two ways:
//
//   * commit() — the devirtualized per-cycle shift used by Channel_group.
//     It fast-paths a completely empty pipeline (one load + branch), wraps
//     the ring head with compare-and-reset instead of a modulo, and
//     specializes the common latency-1 case to a single register move. It
//     returns whether the output stage is occupied so the group can wake
//     the reader on exactly the cycle the value becomes visible.
//
//   * advance() — the naive virtual path, kept bit-for-bit equivalent for
//     Kernel_mode::reference and for channels driven directly as Components
//     (unit tests). Both paths maintain the same occupancy accounting, so a
//     kernel may switch modes mid-run.
//
// Threading (Kernel_mode::sharded, see sim/kernel.h): a channel has exactly
// one writer, and must be registered via add_channel() into that writer's
// shard. write() (phase 1) and commit() (phase 2) then both execute on the
// writer shard's thread; the reader observes out() — and a Value_sink's
// owner observes the folded state — only in a later phase 1, across the
// kernel's barrier. Reader wakes raised by commit_all are routed through
// the kernel's cross-shard mailboxes when the reader lives elsewhere.
#pragma once

#include "sim/kernel.h"

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace noc {

template<typename T> class Channel_group;

/// Push-mode consumer: the channel hands each value over at the commit that
/// makes it visible, instead of the consumer polling out() during step().
/// State-only consumers (flow-control token counters) use this so a token
/// arrival does not need to wake a whole component just to be read — and
/// since BOTH kernel schedules deliver at the same commit, push consumption
/// cannot diverge between them.
template<typename T>
class Value_sink {
public:
    virtual ~Value_sink() = default;
    virtual void deliver(const T& v) = 0;
};

template<typename T>
class Pipeline_channel final : public Component {
    friend class Channel_group<T>;
public:
    explicit Pipeline_channel(int latency, std::string name = "channel")
        : name_{std::move(name)},
          ring_(static_cast<std::size_t>(latency)),
          single_stage_{latency == 1}
    {
        if (latency < 1)
            throw std::invalid_argument{"Pipeline_channel: latency < 1"};
    }

    /// Write this cycle's input value; at most one write per cycle.
    void write(T v)
    {
        if (pending_)
            throw std::logic_error{name_ + ": double write in one cycle"};
        pending_ = std::move(v);
        // Group-registered channels join their group's armed list so the
        // per-cycle commit walks only channels with values in flight.
        if (!armed_ && group_ != nullptr) group_->arm(this);
    }

    /// Output stage: the value written `latency` cycles ago, if any.
    [[nodiscard]] const std::optional<T>& out() const { return ring_[head_]; }

    /// Devirtualized per-cycle shift (see header comment). Returns true when
    /// the output stage holds a value after the shift.
    bool commit()
    {
        // Fast path: nothing anywhere in the pipeline. Skipping the head
        // advance is safe because with every slot empty the head position is
        // unobservable — timing is measured in commits, not head offsets.
        if (occupied_ == 0 && !pending_) return false;
        if (single_stage_) {
            // Latency 1: the pipeline is a single register.
            occupied_ = pending_ ? 1 : 0;
            ring_[0] = std::exchange(pending_, std::nullopt);
            if (occupied_ == 0) return false;
            if (sink_ != nullptr) sink_->deliver(*ring_[0]);
            return true;
        }
        std::optional<T>& slot = ring_[head_];
        if (slot) --occupied_;        // the value that just expired
        if (pending_) ++occupied_;    // the value entering the pipeline
        slot = std::exchange(pending_, std::nullopt);
        if (++head_ == ring_.size()) head_ = 0;
        if (!ring_[head_].has_value()) return false;
        if (sink_ != nullptr) sink_->deliver(*ring_[head_]);
        return true;
    }

    /// Channels are passive in phase 1.
    void step(Cycle) override {}

    [[nodiscard]] bool uses_advance() const override { return true; }

    /// Reference path: the naive shift (modulo wrap, no empty fast path).
    void advance() override
    {
        std::optional<T>& slot = ring_[head_];
        if (slot) --occupied_;
        if (pending_) ++occupied_;
        slot = std::exchange(pending_, std::nullopt);
        head_ = (head_ + 1) % ring_.size();
        if (ring_[head_].has_value() && sink_ != nullptr)
            sink_->deliver(*ring_[head_]);
    }

    /// Wake edge: the component that reads out(); re-armed by the kernel
    /// whenever a commit makes the output non-empty. Wired at build time by
    /// the system builder (arch/noc_system.cpp).
    void set_reader(Component* reader) { reader_ = reader; }
    [[nodiscard]] Component* reader() const { return reader_; }

    /// Push-mode consumer (see Value_sink). Values are still visible at
    /// out() for the usual one cycle; the sink is called exactly once per
    /// value, at the commit that makes it visible.
    void set_sink(Value_sink<T>* sink) { sink_ = sink; }

    /// True when no value is pending or in flight anywhere in the pipeline.
    [[nodiscard]] bool quiet() const
    {
        return occupied_ == 0 && !pending_;
    }

    /// Values currently pending or in flight — the queue depth the
    /// telemetry registry samples (telemetry/registry.h). Sequential
    /// points only, like every other between-runs read.
    [[nodiscard]] std::uint32_t occupancy() const
    {
        return occupied_ + (pending_ ? 1u : 0u);
    }

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] int latency() const
    {
        return static_cast<int>(ring_.size());
    }

    /// Number of values that have traversed the channel (activity counter
    /// for power estimation and utilization statistics).
    [[nodiscard]] std::uint64_t transfer_count() const { return transfers_; }
    void count_transfer() { ++transfers_; }

    // --- fault-injection support (arch/fault_plan.h) -----------------------
    // Both walks visit only values the channel still OWNS, oldest first:
    // the visible output stage (skipped when a sink is attached — that
    // value was already handed over at the commit that exposed it), the
    // in-flight stages, then the pending input. May only be called at a
    // sequential point between kernel runs.

    /// Visit owned values oldest-first; `f(T&)` may mutate in place (a
    /// transient fault marking a flit corrupted).
    template<typename F> void for_each_owned(F&& f)
    {
        const std::size_t n = ring_.size();
        for (std::size_t k = 0; k < n; ++k) {
            if (k == 0 && sink_ != nullptr) continue;
            if (auto& slot = ring_[(head_ + k) % n]; slot) f(*slot);
        }
        if (pending_) f(*pending_);
    }

    /// Drop owned values for which `pred(const T&)` holds, keeping the
    /// occupancy accounting consistent. Returns how many were dropped —
    /// the caller releases any pooled payloads from inside `pred`.
    template<typename Pred> std::size_t remove_owned_if(Pred&& pred)
    {
        std::size_t removed = 0;
        const std::size_t n = ring_.size();
        for (std::size_t k = 0; k < n; ++k) {
            if (k == 0 && sink_ != nullptr) continue;
            if (auto& slot = ring_[(head_ + k) % n]; slot && pred(*slot)) {
                slot.reset();
                --occupied_;
                ++removed;
            }
        }
        if (pending_ && pred(*pending_)) {
            pending_.reset();
            ++removed;
        }
        return removed;
    }

private:
    std::string name_;
    std::vector<std::optional<T>> ring_;
    std::size_t head_ = 0;
    std::optional<T> pending_;
    Component* reader_ = nullptr;
    Value_sink<T>* sink_ = nullptr;
    Channel_group<T>* group_ = nullptr; ///< set when group-registered
    std::uint32_t occupied_ = 0;        ///< non-empty ring slots
    bool armed_ = false;                ///< on the group's active list
    bool single_stage_;
    std::uint64_t transfers_ = 0;
};

/// Flat typed channel array (see Channel_group_base in sim/kernel.h). The
/// commit loop is direct calls into Pipeline_channel<T>::commit — the
/// compiler sees the concrete type and inlines the fast paths. Only armed
/// channels (a write seen, not yet drained) are walked each cycle: a
/// channel arms itself on write() and is dropped from the list once its
/// pipeline is empty again, so a quiet link costs nothing at all.
template<typename T>
class Channel_group final : public Channel_group_base {
public:
    void add(Pipeline_channel<T>* ch)
    {
        ch->group_ = this;
        channels_.push_back(ch);
        as_components_.push_back(ch);
        if (!ch->quiet() && !ch->armed_) arm(ch);
    }

    void arm(Pipeline_channel<T>* ch)
    {
        // A sink/reader invoked during commit_all must not write a channel
        // of the same group: the push would invalidate the loop below (and
        // its commit would be silently dropped by the compaction). No
        // current sink does; fail loudly if one starts to.
        if (committing_)
            throw std::logic_error{
                "Channel_group: write() to an idle channel from inside the "
                "group's own commit"};
        ch->armed_ = true;
        active_.push_back(ch);
    }

    void commit_all(Sim_kernel& kernel) override
    {
        committing_ = true;
        std::size_t keep = 0;
        for (auto* ch : active_) {
            if (ch->commit() && ch->reader() != nullptr)
                kernel.wake(ch->reader());
            if (ch->quiet())
                ch->armed_ = false; // drained: drop from the list
            else
                active_[keep++] = ch;
        }
        active_.resize(keep);
        committing_ = false;
    }

    void advance_all_naive() override
    {
        for (auto* c : as_components_) c->advance();
    }

    void step_all_naive(Cycle now) override
    {
        for (auto* c : as_components_) c->step(now);
    }

    /// No armed channel == no value pending or in flight anywhere (a
    /// channel stays armed until its pipeline fully drains).
    [[nodiscard]] bool all_quiet() const override { return active_.empty(); }

    [[nodiscard]] std::size_t size() const override
    {
        return channels_.size();
    }

private:
    std::vector<Pipeline_channel<T>*> channels_;
    std::vector<Pipeline_channel<T>*> active_; ///< armed channels only
    std::vector<Component*> as_components_; ///< virtual-dispatch reference path
    bool committing_ = false;
};

template<typename T>
void Sim_kernel::add_channel(Pipeline_channel<T>* ch, std::uint32_t shard)
{
    if (ch == nullptr)
        throw std::invalid_argument{"Sim_kernel::add_channel: null channel"};
    if (shard >= shard_count())
        throw std::invalid_argument{
            "Sim_kernel::add_channel: shard out of range"};
    ensure_group<Channel_group<T>>(shard).add(ch);
}

} // namespace noc
