// Pipeline channels — the only communication medium between components.
//
// A Pipeline_channel<T> models `latency` back-to-back registers: a value
// written during step() at cycle t appears at the output during cycle
// t + latency, for exactly one cycle. Because readers can only observe
// values committed in earlier cycles, simulation results are independent of
// the order in which the kernel steps components (see sim/kernel.h).
#pragma once

#include "sim/kernel.h"

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace noc {

template<typename T>
class Pipeline_channel final : public Component {
public:
    explicit Pipeline_channel(int latency, std::string name = "channel")
        : name_{std::move(name)},
          ring_(static_cast<std::size_t>(latency))
    {
        if (latency < 1)
            throw std::invalid_argument{"Pipeline_channel: latency < 1"};
    }

    /// Write this cycle's input value; at most one write per cycle.
    void write(T v)
    {
        if (pending_)
            throw std::logic_error{name_ + ": double write in one cycle"};
        pending_ = std::move(v);
    }

    /// Output stage: the value written `latency` cycles ago, if any.
    [[nodiscard]] const std::optional<T>& out() const { return ring_[head_]; }

    /// Channels are passive in phase 1.
    void step(Cycle) override {}

    void advance() override
    {
        ring_[head_] = std::exchange(pending_, std::nullopt);
        head_ = (head_ + 1) % ring_.size();
    }

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] int latency() const
    {
        return static_cast<int>(ring_.size());
    }

    /// Number of values that have traversed the channel (activity counter
    /// for power estimation and utilization statistics).
    [[nodiscard]] std::uint64_t transfer_count() const { return transfers_; }
    void count_transfer() { ++transfers_; }

private:
    std::string name_;
    std::vector<std::optional<T>> ring_;
    std::size_t head_ = 0;
    std::optional<T> pending_;
    std::uint64_t transfers_ = 0;
};

} // namespace noc
