#include "arch/noc_builder.h"

#include "arch/probe.h"

#include <stdexcept>
#include <utility>

namespace noc {

std::unique_ptr<Noc_system> Noc_builder::build()
{
    if (!topology_.has_value())
        throw std::invalid_argument{"Noc_builder: no topology set"};
    if (!routes_.has_value())
        throw std::invalid_argument{"Noc_builder: no routes set"};
    // Disengage the one-shot inputs BEFORE constructing: if the Noc_system
    // ctor throws (bad routes, invalid params), a retried build() must hit
    // the fail-fast checks above, not hand moved-from state to a new
    // system.
    Topology topo = std::move(*topology_);
    Route_set routes = std::move(*routes_);
    topology_.reset();
    routes_.reset();
    auto sys = std::make_unique<Noc_system>(std::move(topo),
                                           std::move(routes), params_,
                                           options_);
    // The probe is one-shot like topology/routes: re-attaching it to a
    // second build would rebind (and resize) its per-shard state while the
    // first system's routers still hold the pointer.
    if (Probe* p = std::exchange(probe_, nullptr); p != nullptr)
        sys->attach_probe(p);
    return sys;
}

} // namespace noc
