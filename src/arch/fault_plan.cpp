#include "arch/fault_plan.h"

#include "common/rng.h"
#include "topology/graph.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace noc {

void Fault_plan::validate(const Topology& t) const
{
    const auto check_link = [&](Link_id l) {
        if (!l.is_valid() ||
            l.get() >= static_cast<std::uint32_t>(t.link_count()))
            throw std::invalid_argument{
                "Fault_plan: link id out of range for this topology"};
    };
    const auto check_switch = [&](Switch_id s) {
        if (!s.is_valid() ||
            s.get() >= static_cast<std::uint32_t>(t.switch_count()))
            throw std::invalid_argument{
                "Fault_plan: switch id out of range for this topology"};
    };
    for (const Transient_fault& f : transients_) check_link(f.link);
    for (const Permanent_fault& f : permanents_) {
        if (f.links.empty() && f.switches.empty())
            throw std::invalid_argument{
                "Fault_plan: permanent failure with no links or switches"};
        for (const Link_id l : f.links) check_link(l);
        for (const Switch_id s : f.switches) check_switch(s);
    }
    if (!permanents_.empty() && reroute_latency == 0)
        throw std::invalid_argument{
            "Fault_plan: reroute_latency must be >= 1"};
}

std::vector<Cycle> Fault_plan::event_cycles() const
{
    std::vector<Cycle> cycles;
    for (const Transient_fault& f : transients_) cycles.push_back(f.at);
    for (const Permanent_fault& f : permanents_) {
        cycles.push_back(f.at);
        cycles.push_back(f.at + reroute_latency);
    }
    std::sort(cycles.begin(), cycles.end());
    cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());
    return cycles;
}

Fault_plan Fault_plan::random_plan(const Topology& t, std::uint64_t seed,
                                   std::uint32_t transient_count,
                                   std::uint32_t permanent_count,
                                   Cycle horizon)
{
    Random_fault_shape shape;
    shape.transient_count = transient_count;
    shape.permanent_link_count = permanent_count;
    return random_plan(t, seed, shape, horizon);
}

Fault_plan Fault_plan::random_plan(const Topology& t, std::uint64_t seed,
                                   const Random_fault_shape& shape,
                                   Cycle horizon)
{
    if (t.link_count() == 0)
        throw std::invalid_argument{"Fault_plan: topology has no links"};
    if (horizon < 8)
        throw std::invalid_argument{"Fault_plan: horizon too short"};
    const auto links = static_cast<std::uint64_t>(t.link_count());
    const auto switches = static_cast<std::uint64_t>(t.switch_count());
    const std::uint32_t permanent_count =
        std::min(shape.permanent_link_count,
                 static_cast<std::uint32_t>(t.link_count()));
    const std::uint32_t death_count =
        std::min(shape.router_death_count,
                 static_cast<std::uint32_t>(t.switch_count()));

    Fault_plan plan;
    Rng rng{seed};
    for (std::uint32_t i = 0; i < shape.transient_count; ++i) {
        const Cycle at =
            horizon / 8 + rng.next_below(horizon - horizon / 8);
        const Link_id link{
            static_cast<std::uint32_t>(rng.next_below(links))};
        plan.add_transient(at, link);
    }
    std::set<Switch_id> dead_switches;
    if (permanent_count > 0 || death_count > 0) {
        std::set<Link_id> victims;
        while (victims.size() < permanent_count)
            victims.insert(Link_id{
                static_cast<std::uint32_t>(rng.next_below(links))});
        while (dead_switches.size() < death_count)
            dead_switches.insert(Switch_id{
                static_cast<std::uint32_t>(rng.next_below(switches))});
        Permanent_fault f;
        f.at = horizon / 2;
        f.links.assign(victims.begin(), victims.end());
        f.switches.assign(dead_switches.begin(), dead_switches.end());
        plan.permanents_.push_back(std::move(f));
    }
    if (shape.region_switch_count > 0 &&
        dead_switches.size() < static_cast<std::size_t>(t.switch_count())) {
        // Grow a connected cluster by BFS from a random surviving anchor:
        // a topology-agnostic stand-in for a rectangular power domain.
        Switch_id anchor;
        do {
            anchor = Switch_id{
                static_cast<std::uint32_t>(rng.next_below(switches))};
        } while (dead_switches.count(anchor));
        std::vector<Switch_id> region{anchor};
        std::set<Switch_id> in_region{anchor};
        for (std::size_t head = 0;
             head < region.size() &&
             region.size() < shape.region_switch_count;
             ++head) {
            for (const Link_id l : t.out_links(region[head])) {
                const Switch_id next = t.link(l).to;
                if (in_region.count(next) || dead_switches.count(next))
                    continue;
                in_region.insert(next);
                region.push_back(next);
                if (region.size() >= shape.region_switch_count) break;
            }
        }
        plan.add_region_off(horizon / 2, std::move(region));
    }
    return plan;
}

} // namespace noc
