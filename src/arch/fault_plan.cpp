#include "arch/fault_plan.h"

#include "common/rng.h"
#include "topology/graph.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace noc {

void Fault_plan::validate(const Topology& t) const
{
    const auto check_link = [&](Link_id l) {
        if (!l.is_valid() ||
            l.get() >= static_cast<std::uint32_t>(t.link_count()))
            throw std::invalid_argument{
                "Fault_plan: link id out of range for this topology"};
    };
    for (const Transient_fault& f : transients_) check_link(f.link);
    for (const Permanent_fault& f : permanents_) {
        if (f.links.empty())
            throw std::invalid_argument{
                "Fault_plan: permanent failure with no links"};
        for (const Link_id l : f.links) check_link(l);
    }
    if (!permanents_.empty() && reroute_latency == 0)
        throw std::invalid_argument{
            "Fault_plan: reroute_latency must be >= 1"};
}

std::vector<Cycle> Fault_plan::event_cycles() const
{
    std::vector<Cycle> cycles;
    for (const Transient_fault& f : transients_) cycles.push_back(f.at);
    for (const Permanent_fault& f : permanents_) {
        cycles.push_back(f.at);
        cycles.push_back(f.at + reroute_latency);
    }
    std::sort(cycles.begin(), cycles.end());
    cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());
    return cycles;
}

Fault_plan Fault_plan::random_plan(const Topology& t, std::uint64_t seed,
                                   std::uint32_t transient_count,
                                   std::uint32_t permanent_count,
                                   Cycle horizon)
{
    if (t.link_count() == 0)
        throw std::invalid_argument{"Fault_plan: topology has no links"};
    if (horizon < 8)
        throw std::invalid_argument{"Fault_plan: horizon too short"};
    const auto links = static_cast<std::uint64_t>(t.link_count());
    permanent_count = std::min(
        permanent_count, static_cast<std::uint32_t>(t.link_count()));

    Fault_plan plan;
    Rng rng{seed};
    for (std::uint32_t i = 0; i < transient_count; ++i) {
        const Cycle at =
            horizon / 8 + rng.next_below(horizon - horizon / 8);
        const Link_id link{
            static_cast<std::uint32_t>(rng.next_below(links))};
        plan.add_transient(at, link);
    }
    if (permanent_count > 0) {
        std::set<Link_id> victims;
        while (victims.size() < permanent_count)
            victims.insert(Link_id{
                static_cast<std::uint32_t>(rng.next_below(links))});
        plan.add_permanent(
            horizon / 2,
            std::vector<Link_id>(victims.begin(), victims.end()));
    }
    return plan;
}

} // namespace noc
