// Dual-clock FIFO synchronizer model for GALS NoCs (§4.3).
//
// NoCs "natively decouple transaction injection and transaction transport
// times" and act as the backbone for Globally Asynchronous Locally
// Synchronous designs. The standard clock-domain crossing is a gray-coded
// dual-clock FIFO: a word written on a writer-clock edge becomes observable
// to the reader only after `sync_stages` reader-clock edges (brute-force
// two-flop synchronizer on the pointers). This model computes the exact
// crossing latency of a periodic item stream in continuous time; the GALS
// bench sweeps the frequency ratio to quantify the synchronization cost the
// paper says NoCs absorb "natively".
#pragma once

#include <cstdint>

namespace noc {

struct Dc_fifo_params {
    double writer_period_ns = 1.0;
    double reader_period_ns = 1.0;
    /// Reader clock phase offset in [0, reader_period).
    double reader_phase_ns = 0.3;
    int sync_stages = 2;
    int depth = 8;
};

struct Dc_fifo_result {
    double avg_latency_ns = 0.0;
    double max_latency_ns = 0.0;
    double min_latency_ns = 0.0;
    /// Items per ns actually drained (bounded by both clocks).
    double throughput_per_ns = 0.0;
    std::uint64_t items = 0;
};

/// Push `item_count` items at full writer rate through the FIFO and report
/// crossing latency (write edge -> read edge) statistics.
[[nodiscard]] Dc_fifo_result simulate_dc_fifo(const Dc_fifo_params& p,
                                              std::uint64_t item_count);

/// Latency of a plain synchronous link with the same reader clock — the
/// baseline the GALS overhead is measured against.
[[nodiscard]] double synchronous_link_latency_ns(double period_ns,
                                                 int pipeline_stages);

} // namespace noc
