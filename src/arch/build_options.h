// Build_options — the declarative construction surface of Noc_system.
//
// One value type gathers every knob that used to straggle through the
// positional ctor tail (`allow_partial_routes`, `shard_count`) and get
// re-declared by each harness (Sweep_config, Sweep_spec, flow configs):
// kernel schedule, shard partition plan, pool sizing, partial-route policy.
// Harnesses embed ONE Build_options and forward it; Noc_builder
// (arch/noc_builder.h) is the fluent way to fill it in.
//
// Semantics:
//   * kernel_mode is the schedule the system starts in (callers may still
//     flip it later via kernel().set_mode()). The partition plan is
//     consulted only when kernel_mode == Kernel_mode::sharded — the
//     sequential schedules always build single-shard systems, because
//     per-shard pool segments and stats slots are partition metadata, not
//     simulation state, and results never depend on them.
//   * partition says how many shards and where the cuts go
//     (arch/partition_plan.h); it is clamped to the switch count.
//   * pool_reserve_flits pre-sizes the flit pool (0 = the pool's default
//     single chunk). Purely an allocation warm-up: the pool grows on
//     demand either way.
#pragma once

#include "arch/partition_plan.h"
#include "sim/kernel.h"

#include <cstdint>
#include <memory>

namespace noc {

class Fault_plan;

struct Build_options {
    /// Schedule the kernel starts in. Every schedule is bit-identical to
    /// every other (the equivalence suite proves it) — a speed knob.
    Kernel_mode kernel_mode = Kernel_mode::activity_gated;
    /// Shard partition used when kernel_mode == sharded.
    Partition_plan partition = Partition_plan::single();
    /// Accept route sets with empty entries for pairs that never
    /// communicate (synthesized designs route only the application's
    /// flows); sending on a missing route still fails fast in the NI.
    bool allow_partial_routes = false;
    /// Flit-pool slots to pre-allocate (0 = pool default).
    std::uint32_t pool_reserve_flits = 0;
    /// Deterministic fault schedule applied at reconfiguration points
    /// (arch/fault_plan.h); null = fault-free run. Shared so equivalence
    /// runs and sweep points reuse one immutable plan.
    std::shared_ptr<const Fault_plan> fault_plan;

    /// Shards the system will actually build (before the switch-count
    /// clamp): the plan's count under the sharded schedule, else 1.
    [[nodiscard]] std::uint32_t build_shards() const
    {
        if (kernel_mode != Kernel_mode::sharded) return 1;
        const std::uint32_t n = partition.requested_shards();
        return n > 0 ? n : 1;
    }
};

} // namespace noc
