// Bounded flit FIFO used for router input VCs and NI queues.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>

namespace noc {

template<typename T>
class Bounded_fifo {
public:
    explicit Bounded_fifo(std::size_t capacity) : capacity_{capacity}
    {
        if (capacity == 0)
            throw std::invalid_argument{"Bounded_fifo: zero capacity"};
    }

    [[nodiscard]] bool empty() const { return items_.empty(); }
    [[nodiscard]] bool full() const { return items_.size() >= capacity_; }
    [[nodiscard]] std::size_t size() const { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t free_slots() const
    {
        return capacity_ - items_.size();
    }

    void push(T v)
    {
        if (full())
            throw std::logic_error{
                "Bounded_fifo overflow — flow control violated"};
        items_.push_back(std::move(v));
        ++writes_;
    }

    [[nodiscard]] const T& front() const
    {
        if (empty()) throw std::logic_error{"Bounded_fifo::front on empty"};
        return items_.front();
    }

    T pop()
    {
        if (empty()) throw std::logic_error{"Bounded_fifo::pop on empty"};
        T v = std::move(items_.front());
        items_.pop_front();
        ++reads_;
        return v;
    }

    /// Lifetime write/read counters (buffer activity for power models).
    [[nodiscard]] std::uint64_t write_count() const { return writes_; }
    [[nodiscard]] std::uint64_t read_count() const { return reads_; }

private:
    std::size_t capacity_;
    std::deque<T> items_;
    std::uint64_t writes_ = 0;
    std::uint64_t reads_ = 0;
};

} // namespace noc
