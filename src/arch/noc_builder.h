// Noc_builder — the fluent construction facade over Noc_system.
//
// The paper's products argument (§6) is that NoCs shipped when ad-hoc point
// tools became one coherent design flow; this builder is that flow's
// construction surface. One declarative chain replaces the positional ctor
// tail and the per-harness knob duplication:
//
//   Trace_probe trace;                       // optional flight recorder
//   auto sys = Noc_builder{}
//                  .topology(make_mesh(mp))
//                  .routes(xy_routes(topo, mp))
//                  .params(params)
//                  .partition(Partition_plan::balanced(4, weights))
//                  .allow_partial_routes()
//                  .probe(&trace)
//                  .build();
//
// Every setter writes into one Build_options value (arch/build_options.h),
// so a harness that already carries options can hand them over wholesale
// with .options(o) and still override individual knobs after. build()
// validates (topology and routes are mandatory), constructs the system,
// and attaches any probes; the builder can be reused — build() leaves the
// accumulated Build_options in place, but topology, routes and probe must
// be set again (topology/routes are moved into the system; the probe is
// disengaged so one probe never binds two systems).
//
// Convenience: .partition(plan) with more than one shard implies the
// sharded schedule unless .schedule() was called explicitly — asking for a
// partition IS asking for the parallel kernel.
#pragma once

#include "arch/noc_system.h"

#include <memory>
#include <optional>

namespace noc {

class Noc_builder {
public:
    Noc_builder& topology(Topology t)
    {
        topology_ = std::move(t);
        return *this;
    }
    Noc_builder& routes(Route_set r)
    {
        routes_ = std::move(r);
        return *this;
    }
    Noc_builder& params(const Network_params& p)
    {
        params_ = p;
        return *this;
    }
    /// Replace the whole accumulated option set (later setters still
    /// override individual fields). Pins the schedule against partition()'s
    /// sharded inference only when the handed-over options actually chose a
    /// non-default schedule — forwarding default options and then asking
    /// for a partition still means "go parallel".
    Noc_builder& options(Build_options o)
    {
        schedule_set_ = o.kernel_mode != Kernel_mode::activity_gated;
        options_ = std::move(o);
        return *this;
    }
    /// Kernel schedule the system starts in.
    Noc_builder& schedule(Kernel_mode m)
    {
        options_.kernel_mode = m;
        schedule_set_ = true;
        return *this;
    }
    /// Shard partition plan; > 1 shard implies Kernel_mode::sharded unless
    /// schedule() was called explicitly.
    Noc_builder& partition(Partition_plan plan)
    {
        if (!schedule_set_ && plan.requested_shards() > 1)
            options_.kernel_mode = Kernel_mode::sharded;
        options_.partition = std::move(plan);
        return *this;
    }
    Noc_builder& allow_partial_routes(bool v = true)
    {
        options_.allow_partial_routes = v;
        return *this;
    }
    /// Pre-size the flit pool (see Build_options::pool_reserve_flits).
    Noc_builder& reserve_flits(std::uint32_t flits)
    {
        options_.pool_reserve_flits = flits;
        return *this;
    }
    /// Deterministic fault schedule the system executes at reconfiguration
    /// points (arch/fault_plan.h). Shared: equivalence runs across kernel
    /// schedules hand the same immutable plan to every build.
    Noc_builder& fault_plan(std::shared_ptr<const Fault_plan> plan)
    {
        options_.fault_plan = std::move(plan);
        return *this;
    }
    /// Attach `p` to the built system's routers (arch/probe.h). Non-owning:
    /// the probe must outlive the system. One probe per build for now; a
    /// second call replaces the first. One-shot like topology/routes —
    /// build() disengages it, because binding one probe to a second system
    /// would resize its per-shard state under the first system's routers.
    Noc_builder& probe(Probe* p)
    {
        probe_ = p;
        return *this;
    }

    [[nodiscard]] const Build_options& current_options() const
    {
        return options_;
    }

    /// Construct the system (Noc_system is neither copyable nor movable,
    /// so the builder hands out unique_ptr). Throws std::invalid_argument
    /// when topology or routes were never set; the same validation the
    /// Noc_system ctor performs applies on top.
    [[nodiscard]] std::unique_ptr<Noc_system> build();

private:
    std::optional<Topology> topology_;
    std::optional<Route_set> routes_;
    Network_params params_{};
    Build_options options_{};
    bool schedule_set_ = false;
    Probe* probe_ = nullptr;
};

} // namespace noc
