// Probe — near-zero-cost observability hooks on the simulation hot path,
// and Trace_probe, the pool-aware flight recorder built on them.
//
// ## The Probe interface
//
// A probe attaches to a whole system (Noc_system::attach_probe, or
// Noc_builder::probe while building) and receives one on_hop() call per
// switch traversal — the moment Router::step moves a flit through the
// crossbar. The probe is non-owning and must outlive the system (or be
// detached with attach_probe(nullptr) first); systems start probe-free and
// the hot path pays a single predictable branch when no probe is attached.
//
// Threading contract (the sharded kernel, sim/kernel.h): on_hop() runs in
// phase 1 on the shard's own worker thread, concurrently across shards. A
// probe implementation must therefore partition any mutable state by the
// `shard` argument (it is the router's shard id, in [0, shard_count)) and
// touch only that shard's slice — exactly the discipline Trace_probe
// follows. bind() runs once, single-threaded, at attach time, before any
// on_hop(); read-out accessors may be called only between kernel runs
// (sequential points), like every other shard introspection.
//
// ## Trace_probe record format
//
// Trace_probe keeps one fixed-capacity ring buffer per shard; each record
// is a compact Hop: the 4-byte Flit_ref handle of the flit that hopped,
// the switch it traversed, the cycle it happened, and a branch count that
// tags multicast fork events (0 = plain hop) — the ROADMAP's
// "pool-aware trace capture": flit payloads live in the per-system
// Flit_pool, so the handle stands in for the payload and logging a hop
// costs one ring store (no payload copy, no allocation, no branch beyond
// the attach check). The ring overwrites oldest-first, so after any run the
// probe holds the last `capacity` hops of each shard — a flight recorder
// for deadlock/livelock post-mortems at near-zero steady-state cost.
//
// Carrying the cycle in the record matters for readout: shards run
// concurrently, so per-shard rings interleave arbitrarily across threads
// and a shard-order dump (the default) shows each shard's timeline but not
// the global one. dump(pool, Dump_order::cycle_merged) merges every
// shard's retained records into one cycle-sorted timeline (stable: ties
// keep shard order), which is byte-deterministic for a deterministic run
// regardless of shard count.
//
// Resolving records: a handle dereferences through the pool
// (Trace_probe::dump) to the full Flit — src/dst/packet/route_index tell
// you what was moving where. Handles are meaningful while their flit is in
// flight, which is precisely the post-mortem case (a wedged network holds
// its flits); a record whose flit was since delivered and released
// resolves to whatever packet recycled the slot, and NOC_DEBUG builds
// detect exactly this (dump() skips dangling records there instead of
// throwing). The records themselves never dangle memory-wise — pool chunks
// are never freed while the system lives.
#pragma once

#include "arch/flit_pool.h"
#include "common/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace noc {

/// One fault-engine event (arch/fault_plan.h), reported through
/// Probe::on_fault_event so probes can record recovery timelines alongside
/// their hop traces.
struct Fault_event {
    enum class Kind {
        transient_injected, ///< one flit corrupted on `links[0]`
        link_failed,        ///< permanent failure: purge done, reroute pending
        router_failed,      ///< whole-router death: links + NI retired
        region_failed,      ///< region power-off: every switch in `switches`
        rerouted,           ///< new route tables published
        packet_replayed,    ///< purged packets rescheduled for replay
    };
    Kind kind = Kind::transient_injected;
    Cycle at = invalid_cycle;
    std::vector<Link_id> links;          ///< affected links
    std::vector<Switch_id> switches;     ///< dead routers (router/region)
    std::uint64_t packets_dropped = 0;   ///< purged at a permanent failure
    std::uint64_t packets_replayed = 0;  ///< purged but rescheduled (replay)
    std::uint64_t unreachable_pairs = 0; ///< pairs still dead after reroute
};

/// Hot-path observability interface; see the header comment for the
/// threading contract.
class Probe {
public:
    virtual ~Probe() = default;

    /// Attach-time setup: the system's shard count (>= 1). Runs before any
    /// on_hop(); per-shard state must be sized here.
    virtual void bind(std::uint32_t shard_count) { (void)shard_count; }

    /// One switch traversal: router `sw` (registered in shard `shard`)
    /// moved `flit` through its crossbar at cycle `now`.
    virtual void on_hop(std::uint32_t shard, Cycle now, Switch_id sw,
                        Flit_ref flit) = 0;

    /// One multicast head-flit fork (topology/multicast.h): router `sw`
    /// replicated `flit` into `branches` per-branch pool copies at cycle
    /// `now`. Fired before the parent handle is released, so `flit` still
    /// resolves inside the call; each branch copy additionally reports its
    /// own on_hop. Same threading contract as on_hop (phase 1b, shard
    /// worker thread).
    virtual void on_multicast_fork(std::uint32_t shard, Cycle now,
                                   Switch_id sw, Flit_ref flit,
                                   std::uint16_t branches)
    {
        (void)shard;
        (void)now;
        (void)sw;
        (void)flit;
        (void)branches;
    }

    /// One fault-engine event (arch/fault_plan.h). Unlike on_hop this runs
    /// at a sequential point between kernel runs, never concurrently —
    /// implementations need no per-shard partitioning for it.
    virtual void on_fault_event(const Fault_event& event) { (void)event; }
};

/// Per-shard ring-buffer flight recorder of 16-byte Hop records (format
/// and threading rules in the header comment).
class Trace_probe final : public Probe {
public:
    /// One retained record: which flit crossed which switch, and when.
    /// `branches` discriminates the event kind: 0 = crossbar hop, > 0 = a
    /// multicast fork that made that many branch copies.
    struct Hop {
        Flit_ref flit;
        Switch_id sw{};
        Cycle now = invalid_cycle;
        std::uint16_t branches = 0;
    };

    /// Readout ordering for dump() — see the header comment.
    enum class Dump_order : std::uint8_t {
        shard,        ///< per-shard timelines, shard 0 first (historical)
        cycle_merged, ///< one global timeline, cycle-sorted across shards
    };

    /// `capacity_per_shard` is rounded up to a power of two (>= 16).
    explicit Trace_probe(std::uint32_t capacity_per_shard = 4096);

    void bind(std::uint32_t shard_count) override;

    void on_hop(std::uint32_t shard, Cycle now, Switch_id sw,
                Flit_ref flit) override
    {
        Ring& r = rings_[shard];
        r.records[static_cast<std::size_t>(r.count & mask_)] =
            Hop{flit, sw, now, 0};
        ++r.count;
    }

    /// Fork events share the hop rings (they are ordinary per-shard
    /// hot-path records); `branches` tags them for dump()'s
    /// `multicast_forked` label. The parent handle is released right after
    /// the fork, so like any delivered flit it may resolve to recycled
    /// contents at dump time (NOC_DEBUG builds skip such records).
    void on_multicast_fork(std::uint32_t shard, Cycle now, Switch_id sw,
                           Flit_ref flit, std::uint16_t branches) override
    {
        Ring& r = rings_[shard];
        r.records[static_cast<std::size_t>(r.count & mask_)] =
            Hop{flit, sw, now, branches};
        ++r.count;
    }

    [[nodiscard]] std::uint32_t capacity_per_shard() const
    {
        return mask_ + 1;
    }
    [[nodiscard]] std::uint32_t shard_count() const
    {
        return static_cast<std::uint32_t>(rings_.size());
    }
    /// Hops recorded in shard `s` since attach (monotonic; not capped by
    /// the ring capacity).
    [[nodiscard]] std::uint64_t recorded(std::uint32_t s) const
    {
        return rings_.at(s).count;
    }
    /// Total hops recorded across shards. With one probe attached to one
    /// system this equals the system's total_flits_routed() delta.
    [[nodiscard]] std::uint64_t total_recorded() const;

    /// Sequential-point fault events are retained verbatim (there are few
    /// of them) — the recovery timeline of the run.
    void on_fault_event(const Fault_event& event) override
    {
        fault_events_.push_back(event);
    }
    [[nodiscard]] const std::vector<Fault_event>& fault_events() const
    {
        return fault_events_;
    }

    /// The retained flit handles of shard `s`, oldest first (at most
    /// capacity_per_shard()). Call only between kernel runs.
    [[nodiscard]] std::vector<Flit_ref> recent(std::uint32_t s) const;
    /// Same records with their switch + cycle context.
    [[nodiscard]] std::vector<Hop> recent_hops(std::uint32_t s) const;

    /// Human-readable post-mortem: every retained record resolved through
    /// `pool` (src -> dst, packet, flit index, route position), in
    /// per-shard or cycle-merged order (Dump_order). See the header
    /// comment for the dangling-record caveat.
    [[nodiscard]] std::string dump(const Flit_pool& pool,
                                   Dump_order order =
                                       Dump_order::shard) const;

    /// Drop all retained records and counts (rings stay allocated).
    void clear();

private:
    /// One shard's ring; cache-line aligned so two shards' write cursors
    /// never share a line.
    struct alignas(64) Ring {
        std::vector<Hop> records;
        std::uint64_t count = 0; ///< total ever recorded
    };

    std::uint32_t mask_ = 0; ///< capacity - 1 (power of two)
    std::vector<Ring> rings_;
    std::vector<Fault_event> fault_events_;
};

} // namespace noc
