// Pooled flit storage: one slab of Flit payloads per system, addressed by
// 32-bit handles.
//
// PR 1 showed that once the mesh fills up, simulation time is dominated by
// copying ~80-byte Flit structs through deque-backed FIFOs. The fix is the
// software analog of what silicon does (§4: "silicon-proven NoCs live or
// die by buffer cost"): flit payloads live in ONE place — the pool — and
// what actually flows through channels, VC buffers, source queues and
// retransmission windows is a 4-byte Flit_ref handle. A hop moves one
// 32-bit index instead of memcpying the struct.
//
// Storage is chunked (fixed-size arrays, never relocated), so a Flit& stays
// valid across acquire() growth — callers may hold a reference while
// enqueueing more packets (delivery listeners do exactly that). Handles are
// recycled LIFO for cache warmth. See arch/flit.h for the ownership rules
// that say who acquires and who releases.
#pragma once

#include "arch/flit.h"
#include "common/noc_assert.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace noc {

/// Handle to a pooled Flit. Trivially copyable, 4 bytes; the invalid value
/// doubles as "no flit". A Flit_ref is owned by exactly one container at a
/// time (see arch/flit.h); dereferencing a released handle is a bug that
/// NOC_DEBUG builds catch in Flit_pool::operator[].
struct Flit_ref {
    static constexpr std::uint32_t invalid_index = 0xffff'ffffu;

    std::uint32_t index = invalid_index;

    [[nodiscard]] constexpr bool is_valid() const
    {
        return index != invalid_index;
    }
    friend constexpr bool operator==(Flit_ref, Flit_ref) = default;
};

/// Growable slab of Flits with a LIFO free list. Not thread-safe (one pool
/// per Noc_system; the kernel is single-threaded).
class Flit_pool {
public:
    /// Flits per chunk. Chunks are allocated whole and never freed until the
    /// pool dies, so saturation backlogs cost a handful of mmaps, not a
    /// realloc-and-copy of every live flit.
    static constexpr std::uint32_t chunk_shift = 10;
    static constexpr std::uint32_t chunk_size = 1u << chunk_shift;

    explicit Flit_pool(std::uint32_t initial_capacity = chunk_size)
    {
        while (capacity_ < initial_capacity) add_chunk();
    }

    Flit_pool(const Flit_pool&) = delete;
    Flit_pool& operator=(const Flit_pool&) = delete;

    [[nodiscard]] Flit& operator[](Flit_ref ref)
    {
        NOC_ASSERT(ref.index < capacity_, "Flit_pool: bad handle");
        NOC_ASSERT(live_flags_[ref.index], "Flit_pool: dangling handle");
        return chunks_[ref.index >> chunk_shift][ref.index &
                                                 (chunk_size - 1)];
    }
    [[nodiscard]] const Flit& operator[](Flit_ref ref) const
    {
        return const_cast<Flit_pool&>(*this)[ref];
    }

    /// Take a slot (default-initialized Flit). Grows by one chunk when the
    /// free list is empty — exhaustion is growth, never failure, because a
    /// source queue under open-loop overload is legitimately unbounded.
    [[nodiscard]] Flit_ref acquire()
    {
        const Flit_ref ref = acquire_uninitialized();
        chunks_[ref.index >> chunk_shift][ref.index & (chunk_size - 1)] =
            Flit{};
        return ref;
    }

    /// Like acquire() but leaves the recycled slot's contents unspecified —
    /// for callers that overwrite the whole Flit immediately (the ACK/NACK
    /// wire copy in Link_sender::transmit_from_window).
    [[nodiscard]] Flit_ref acquire_uninitialized()
    {
        if (free_.empty()) add_chunk();
        const std::uint32_t idx = free_.back();
        free_.pop_back();
#ifdef NOC_DEBUG
        live_flags_[idx] = 1;
#endif
        ++live_;
        if (live_ > high_water_) high_water_ = live_;
        ++total_acquired_;
        return Flit_ref{idx};
    }

    /// Return a slot to the free list. Double-release and releasing an
    /// invalid handle are bugs; NOC_DEBUG builds throw.
    void release(Flit_ref ref)
    {
        NOC_ASSERT(ref.index < capacity_, "Flit_pool: release of bad handle");
        NOC_ASSERT(live_flags_[ref.index], "Flit_pool: double release");
#ifdef NOC_DEBUG
        live_flags_[ref.index] = 0;
#endif
        free_.push_back(ref.index);
        --live_;
    }

    /// Slots currently acquired.
    [[nodiscard]] std::uint32_t live() const { return live_; }
    /// Maximum simultaneously-live slots ever seen (the buffer-cost number a
    /// hardware implementation would have to provision).
    [[nodiscard]] std::uint32_t high_water() const { return high_water_; }
    [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
    [[nodiscard]] std::uint64_t total_acquired() const
    {
        return total_acquired_;
    }

private:
    void add_chunk()
    {
        chunks_.push_back(std::make_unique<Flit[]>(chunk_size));
        free_.reserve(capacity_ + chunk_size);
        // Push in reverse so the LIFO free list hands out ascending indices.
        for (std::uint32_t i = chunk_size; i-- > 0;)
            free_.push_back(capacity_ + i);
        capacity_ += chunk_size;
#ifdef NOC_DEBUG
        live_flags_.resize(capacity_, 0);
#endif
    }

    std::vector<std::unique_ptr<Flit[]>> chunks_;
    std::vector<std::uint32_t> free_;
#ifdef NOC_DEBUG
    std::vector<std::uint8_t> live_flags_;
#endif
    std::uint32_t capacity_ = 0;
    std::uint32_t live_ = 0;
    std::uint32_t high_water_ = 0;
    std::uint64_t total_acquired_ = 0;
};

} // namespace noc
