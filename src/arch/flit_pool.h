// Pooled flit storage: one slab of Flit payloads per system, addressed by
// 32-bit handles.
//
// PR 1 showed that once the mesh fills up, simulation time is dominated by
// copying ~80-byte Flit structs through deque-backed FIFOs. The fix is the
// software analog of what silicon does (§4: "silicon-proven NoCs live or
// die by buffer cost"): flit payloads live in ONE place — the pool — and
// what actually flows through channels, VC buffers, source queues and
// retransmission windows is a 4-byte Flit_ref handle. A hop moves one
// 32-bit index instead of memcpying the struct.
//
// Storage is chunked (fixed-size arrays, never relocated), so a Flit& stays
// valid across acquire() growth — callers may hold a reference while
// enqueueing more packets (delivery listeners do exactly that). Handles are
// recycled LIFO for cache warmth. See arch/flit.h for the ownership rules
// that say who acquires and who releases.
//
// Threading (the sharded kernel, sim/kernel.h): the free list is SEGMENTED.
// Each kernel shard owns one segment, selected through a thread-local index
// that the kernel's per-shard worker sets at job start
// (set_thread_segment, wired by Noc_system via the shard thread-init hook).
// acquire() and release() touch only the executing thread's segment, so the
// hot path needs no locks or atomics: a flit released far from where it was
// acquired simply migrates to the releasing shard's segment — a free slot
// is a free slot. Only chunk growth takes a mutex (rare: growth doubles as
// backlog absorption), and the chunk directory is pre-reserved so a
// concurrent operator[] never observes a relocation. Handles themselves
// cross shards only through committed channels, i.e. across the kernel's
// barrier, which provides the happens-before edge for the payload bytes.
#pragma once

#include "arch/flit.h"
#include "common/noc_assert.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace noc {

/// Handle to a pooled Flit. Trivially copyable, 4 bytes; the invalid value
/// doubles as "no flit". A Flit_ref is owned by exactly one container at a
/// time (see arch/flit.h); dereferencing a released handle is a bug that
/// NOC_DEBUG builds catch in Flit_pool::operator[].
struct Flit_ref {
    static constexpr std::uint32_t invalid_index = 0xffff'ffffu;

    std::uint32_t index = invalid_index;

    [[nodiscard]] constexpr bool is_valid() const
    {
        return index != invalid_index;
    }
    friend constexpr bool operator==(Flit_ref, Flit_ref) = default;
};

/// Growable slab of Flits with per-shard LIFO free-list segments (see the
/// header comment for the threading rules).
class Flit_pool {
public:
    /// Flits per chunk. Chunks are allocated whole and never freed until the
    /// pool dies, so saturation backlogs cost a handful of mmaps, not a
    /// realloc-and-copy of every live flit.
    static constexpr std::uint32_t chunk_shift = 10;
    static constexpr std::uint32_t chunk_size = 1u << chunk_shift;
    /// Chunk-directory bound: pre-reserved so growth never relocates the
    /// directory under a concurrent reader. 4M flits is ~50x the worst
    /// backlog any bench has produced; exceeding it throws.
    static constexpr std::uint32_t max_chunks = 4096;

    explicit Flit_pool(std::uint32_t initial_capacity = chunk_size)
        : segments_(1)
    {
        chunks_.reserve(max_chunks);
#ifdef NOC_DEBUG
        live_flags_.resize(static_cast<std::size_t>(max_chunks) * chunk_size,
                           0);
#endif
        while (capacity_.load(std::memory_order_relaxed) < initial_capacity)
            add_chunk(segments_[0]);
    }

    Flit_pool(const Flit_pool&) = delete;
    Flit_pool& operator=(const Flit_pool&) = delete;

    /// Split the free list into `n` per-shard segments. Must be called
    /// before any flit is acquired (Noc_system does it at build time).
    /// Pre-filled free slots stay with segment 0; other segments grow on
    /// first use.
    void set_segment_count(std::uint32_t n)
    {
        if (n == 0)
            throw std::invalid_argument{"Flit_pool: segment count >= 1"};
        if (total_acquired() != 0)
            throw std::logic_error{
                "Flit_pool: set_segment_count before first acquire"};
        std::vector<std::uint32_t> free = std::move(segments_[0].free);
        segments_ = std::vector<Segment>(n);
        segments_[0].free = std::move(free);
    }
    [[nodiscard]] std::uint32_t segment_count() const
    {
        return static_cast<std::uint32_t>(segments_.size());
    }

    /// Select the calling thread's segment. Set by the sharded kernel's
    /// per-shard thread-init hook; threads that never call it (all
    /// sequential code) use segment 0. Clamped against this pool's segment
    /// count at use, so a stale index from another system is harmless.
    static void set_thread_segment(std::uint32_t s) { t_segment_ = s; }

#ifdef NOC_DEBUG
    /// Debug-only liveness query (the tracking exists only in NOC_DEBUG
    /// builds): is `ref` currently acquired? Used by post-mortem readers
    /// (Trace_probe::dump) to skip records whose flit was since released.
    [[nodiscard]] bool is_live(Flit_ref ref) const
    {
        return ref.index < capacity_.load(std::memory_order_relaxed) &&
               live_flags_[ref.index] != 0;
    }
#endif

    [[nodiscard]] Flit& operator[](Flit_ref ref)
    {
        NOC_ASSERT(ref.index < capacity_.load(std::memory_order_relaxed),
                   "Flit_pool: bad handle");
        NOC_ASSERT(live_flags_[ref.index], "Flit_pool: dangling handle");
        return chunks_[ref.index >> chunk_shift][ref.index &
                                                 (chunk_size - 1)];
    }
    [[nodiscard]] const Flit& operator[](Flit_ref ref) const
    {
        return const_cast<Flit_pool&>(*this)[ref];
    }

    /// Take a slot (default-initialized Flit). Grows by one chunk when the
    /// free list is empty — exhaustion is growth, never failure, because a
    /// source queue under open-loop overload is legitimately unbounded.
    [[nodiscard]] Flit_ref acquire()
    {
        const Flit_ref ref = acquire_uninitialized();
        chunks_[ref.index >> chunk_shift][ref.index & (chunk_size - 1)] =
            Flit{};
        return ref;
    }

    /// Like acquire() but leaves the recycled slot's contents unspecified —
    /// for callers that overwrite the whole Flit immediately (the ACK/NACK
    /// wire copy in Link_sender::transmit_from_window).
    [[nodiscard]] Flit_ref acquire_uninitialized()
    {
        Segment& seg = my_segment();
        if (seg.free.empty()) add_chunk(seg);
        const std::uint32_t idx = seg.free.back();
        seg.free.pop_back();
#ifdef NOC_DEBUG
        live_flags_[idx] = 1;
#endif
        ++seg.live;
        if (seg.live > seg.high_water) seg.high_water = seg.live;
        ++seg.total_acquired;
        return Flit_ref{idx};
    }

    /// Return a slot to the calling thread's segment. Double-release and
    /// releasing an invalid handle are bugs; NOC_DEBUG builds throw.
    void release(Flit_ref ref)
    {
        NOC_ASSERT(ref.index < capacity_.load(std::memory_order_relaxed),
                   "Flit_pool: release of bad handle");
        NOC_ASSERT(live_flags_[ref.index], "Flit_pool: double release");
#ifdef NOC_DEBUG
        live_flags_[ref.index] = 0;
#endif
        Segment& seg = my_segment();
        seg.free.push_back(ref.index);
        --seg.live;
    }

    /// Slots currently acquired, summed over segments. Exact at any
    /// sequential point (between kernel runs); per-segment live counts are
    /// signed because a flit acquired in one segment may be released into
    /// another.
    [[nodiscard]] std::uint32_t live() const
    {
        std::int64_t n = 0;
        for (const auto& s : segments_) n += s.live;
        return static_cast<std::uint32_t>(n);
    }
    /// Sum of per-segment high-water marks: the buffer-provisioning cost of
    /// the run. With one segment this is the exact maximum of live(); with
    /// several it is a (tight in practice) upper bound, since segments need
    /// not peak on the same cycle.
    [[nodiscard]] std::uint32_t high_water() const
    {
        std::int64_t n = 0;
        for (const auto& s : segments_) n += s.high_water;
        return static_cast<std::uint32_t>(n);
    }
    [[nodiscard]] std::uint32_t capacity() const
    {
        return capacity_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total_acquired() const
    {
        std::uint64_t n = 0;
        for (const auto& s : segments_) n += s.total_acquired;
        return n;
    }

private:
    /// One shard's free list and accounting, padded so two workers' hot
    /// counters never share a cache line.
    struct alignas(64) Segment {
        std::vector<std::uint32_t> free;
        std::int64_t live = 0; ///< may dip negative per segment (migration)
        std::int64_t high_water = 0;
        std::uint64_t total_acquired = 0;
    };

    [[nodiscard]] Segment& my_segment()
    {
        const std::uint32_t s = t_segment_;
        return segments_[s < segments_.size() ? s : 0];
    }

    void add_chunk(Segment& seg)
    {
        const std::lock_guard<std::mutex> lock{grow_mutex_};
        if (chunks_.size() >= max_chunks)
            throw std::length_error{"Flit_pool: exceeded max_chunks"};
        chunks_.push_back(std::make_unique<Flit[]>(chunk_size));
        const std::uint32_t base = capacity_.load(std::memory_order_relaxed);
        seg.free.reserve(seg.free.size() + chunk_size);
        // Push in reverse so the LIFO free list hands out ascending indices.
        for (std::uint32_t i = chunk_size; i-- > 0;)
            seg.free.push_back(base + i);
        capacity_.store(base + chunk_size, std::memory_order_release);
    }

    std::vector<std::unique_ptr<Flit[]>> chunks_; ///< never relocated
    std::vector<Segment> segments_;               ///< >= 1
#ifdef NOC_DEBUG
    std::vector<std::uint8_t> live_flags_; ///< pre-sized to max capacity
#endif
    std::mutex grow_mutex_;
    std::atomic<std::uint32_t> capacity_{0};

    inline static thread_local std::uint32_t t_segment_ = 0;
};

} // namespace noc
