#include "arch/link_sender.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace noc {

Link_sender::Link_sender(const Network_params& params, Flit_channel* data,
                         Token_channel* tokens, bool is_ejection)
    : fc_{params.fc},
      ejection_{is_ejection},
      data_{data},
      tokens_{tokens},
      credits_(static_cast<std::size_t>(params.total_vcs()),
               params.buffer_depth),
      window_{static_cast<std::size_t>(params.output_buffer_depth)}
{
    if (data_ == nullptr)
        throw std::invalid_argument{"Link_sender: null data channel"};
    if (tokens_ == nullptr && !ejection_)
        throw std::invalid_argument{"Link_sender: null token channel"};
    if (tokens_ != nullptr) tokens_->set_sink(this);
}

Link_sender::Link_sender(Link_sender&& other) noexcept
    : fc_{other.fc_},
      ejection_{other.ejection_},
      data_{other.data_},
      tokens_{std::exchange(other.tokens_, nullptr)},
      credits_{std::move(other.credits_)},
      stop_mask_{other.stop_mask_},
      retransmit_{std::move(other.retransmit_)},
      window_{other.window_},
      base_seq_{other.base_seq_},
      next_seq_{other.next_seq_},
      send_idx_{other.send_idx_},
      sent_this_cycle_{other.sent_this_cycle_},
      wire_mark_{other.wire_mark_},
      wire_mark_valid_{other.wire_mark_valid_},
      retransmissions_{other.retransmissions_},
      flits_sent_{other.flits_sent_}
{
    // The sink registration is an address, so it must follow the object.
    if (tokens_ != nullptr) tokens_->set_sink(this);
}

void Link_sender::deliver(const Fc_token& token)
{
    switch (token.kind) {
    case Fc_token::Kind::credit:
        ++credits_[token.vc];
        break;
    case Fc_token::Kind::on_off_mask:
        stop_mask_ = token.stop_mask;
        break;
    case Fc_token::Kind::ack: {
        // Cumulative: everything up to and including link_seq is accepted.
        while (!retransmit_.empty() && base_seq_ <= token.link_seq) {
            retransmit_.pop_front();
            ++base_seq_;
            if (send_idx_ > 0) --send_idx_;
        }
        break;
    }
    case Fc_token::Kind::nack:
        // Rewind to the sequence number the receiver expects.
        if (token.link_seq >= base_seq_ &&
            token.link_seq - base_seq_ <= retransmit_.size())
            send_idx_ = token.link_seq - base_seq_;
        break;
    }
}

bool Link_sender::can_send(int vc) const
{
    if (sent_this_cycle_) return false;
    if (ejection_) return true;
    switch (fc_) {
    case Flow_control_kind::credit:
        return credits_[static_cast<std::size_t>(vc)] > 0;
    case Flow_control_kind::on_off:
        return ((stop_mask_ >> vc) & 1u) == 0;
    case Flow_control_kind::ack_nack:
        return retransmit_.size() < window_;
    }
    return false;
}

void Link_sender::send(Flit f)
{
    if (sent_this_cycle_)
        throw std::logic_error{"Link_sender: two sends in one cycle"};
    sent_this_cycle_ = true;
    ++flits_sent_;
    if (!ejection_) {
        switch (fc_) {
        case Flow_control_kind::credit:
            if (credits_[f.vc] <= 0)
                throw std::logic_error{"Link_sender: send without credit"};
            --credits_[f.vc];
            break;
        case Flow_control_kind::on_off:
            break;
        case Flow_control_kind::ack_nack:
            f.link_seq = next_seq_++;
            retransmit_.push_back(f);
            return; // transmitted by end_cycle()
        }
    }
    data_->count_transfer();
    data_->write(std::move(f));
}

void Link_sender::transmit_from_window()
{
    if (send_idx_ >= retransmit_.size()) return;
    const Flit& f = retransmit_[send_idx_];
    // A flit is a retransmission when its sequence number was already put on
    // the wire once (i.e. it is at or below the wire high-water mark).
    if (wire_mark_valid_ && f.link_seq <= wire_mark_) ++retransmissions_;
    wire_mark_ = wire_mark_valid_ ? std::max(wire_mark_, f.link_seq)
                                  : f.link_seq;
    wire_mark_valid_ = true;
    data_->count_transfer();
    data_->write(f);
    ++send_idx_;
}

int Link_sender::credits(int vc) const
{
    return credits_[static_cast<std::size_t>(vc)];
}

} // namespace noc
