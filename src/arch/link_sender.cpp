#include "arch/link_sender.h"

#include <algorithm>
#include <stdexcept>

namespace noc {

Link_sender::Link_sender(const Network_params& params, Flit_channel* data,
                         Token_channel* tokens, bool is_ejection)
    : fc_{params.fc},
      ejection_{is_ejection},
      data_{data},
      tokens_{tokens},
      credits_(static_cast<std::size_t>(params.total_vcs()),
               params.buffer_depth),
      window_{static_cast<std::size_t>(params.output_buffer_depth)}
{
    if (data_ == nullptr)
        throw std::invalid_argument{"Link_sender: null data channel"};
    if (tokens_ == nullptr && !ejection_)
        throw std::invalid_argument{"Link_sender: null token channel"};
}

void Link_sender::begin_cycle()
{
    sent_this_cycle_ = false;
    if (ejection_ || tokens_ == nullptr) return;
    const auto& token = tokens_->out();
    if (!token) return;
    switch (token->kind) {
    case Fc_token::Kind::credit:
        ++credits_[token->vc];
        break;
    case Fc_token::Kind::on_off_mask:
        stop_mask_ = token->stop_mask;
        break;
    case Fc_token::Kind::ack: {
        // Cumulative: everything up to and including link_seq is accepted.
        while (!retransmit_.empty() && base_seq_ <= token->link_seq) {
            retransmit_.pop_front();
            ++base_seq_;
            if (send_idx_ > 0) --send_idx_;
        }
        break;
    }
    case Fc_token::Kind::nack:
        // Rewind to the sequence number the receiver expects.
        if (token->link_seq >= base_seq_ &&
            token->link_seq - base_seq_ <= retransmit_.size())
            send_idx_ = token->link_seq - base_seq_;
        break;
    }
}

bool Link_sender::can_send(int vc) const
{
    if (sent_this_cycle_) return false;
    if (ejection_) return true;
    switch (fc_) {
    case Flow_control_kind::credit:
        return credits_[static_cast<std::size_t>(vc)] > 0;
    case Flow_control_kind::on_off:
        return ((stop_mask_ >> vc) & 1u) == 0;
    case Flow_control_kind::ack_nack:
        return retransmit_.size() < window_;
    }
    return false;
}

void Link_sender::send(Flit f)
{
    if (sent_this_cycle_)
        throw std::logic_error{"Link_sender: two sends in one cycle"};
    sent_this_cycle_ = true;
    ++flits_sent_;
    if (!ejection_) {
        switch (fc_) {
        case Flow_control_kind::credit:
            if (credits_[f.vc] <= 0)
                throw std::logic_error{"Link_sender: send without credit"};
            --credits_[f.vc];
            break;
        case Flow_control_kind::on_off:
            break;
        case Flow_control_kind::ack_nack:
            f.link_seq = next_seq_++;
            retransmit_.push_back(f);
            return; // transmitted by end_cycle()
        }
    }
    data_->count_transfer();
    data_->write(std::move(f));
}

void Link_sender::end_cycle()
{
    if (ejection_ || fc_ != Flow_control_kind::ack_nack) return;
    if (send_idx_ >= retransmit_.size()) return;
    const Flit& f = retransmit_[send_idx_];
    // A flit is a retransmission when its sequence number was already put on
    // the wire once (i.e. it is at or below the wire high-water mark).
    if (wire_mark_valid_ && f.link_seq <= wire_mark_) ++retransmissions_;
    wire_mark_ = wire_mark_valid_ ? std::max(wire_mark_, f.link_seq)
                                  : f.link_seq;
    wire_mark_valid_ = true;
    data_->count_transfer();
    data_->write(f);
    ++send_idx_;
}

int Link_sender::credits(int vc) const
{
    return credits_[static_cast<std::size_t>(vc)];
}

} // namespace noc
