#include "arch/link_sender.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace noc {

Link_sender::Link_sender(const Network_params& params, Flit_pool* pool,
                         Flit_channel* data, Token_channel* tokens,
                         bool is_ejection)
    : fc_{params.fc},
      ejection_{is_ejection},
      pool_{pool},
      data_{data},
      tokens_{tokens},
      credits_(static_cast<std::size_t>(params.total_vcs()),
               params.buffer_depth),
      retransmit_{static_cast<std::size_t>(params.output_buffer_depth)}
{
    if (pool_ == nullptr)
        throw std::invalid_argument{"Link_sender: null flit pool"};
    if (data_ == nullptr)
        throw std::invalid_argument{"Link_sender: null data channel"};
    if (tokens_ == nullptr && !ejection_)
        throw std::invalid_argument{"Link_sender: null token channel"};
    if (tokens_ != nullptr) tokens_->set_sink(this);
}

Link_sender::Link_sender(Link_sender&& other) noexcept
    : fc_{other.fc_},
      ejection_{other.ejection_},
      pool_{other.pool_},
      data_{other.data_},
      tokens_{std::exchange(other.tokens_, nullptr)},
      wake_target_{other.wake_target_},
      wake_on_token_{other.wake_on_token_},
      state_gen_{other.state_gen_},
      credits_{std::move(other.credits_)},
      stop_mask_{other.stop_mask_},
      retransmit_{std::move(other.retransmit_)},
      base_seq_{other.base_seq_},
      next_seq_{other.next_seq_},
      send_idx_{other.send_idx_},
      sent_this_cycle_{other.sent_this_cycle_},
      failed_{other.failed_},
      wire_mark_{other.wire_mark_},
      wire_mark_valid_{other.wire_mark_valid_},
      retransmissions_{other.retransmissions_},
      flits_sent_{other.flits_sent_}
{
    // The sink registration is an address, so it must follow the object.
    if (tokens_ != nullptr) tokens_->set_sink(this);
}

void Link_sender::deliver(const Fc_token& token)
{
    switch (token.kind) {
    case Fc_token::Kind::credit:
        ++credits_[token.vc];
        ++state_gen_;
        if (wake_on_token_ && wake_target_ != nullptr)
            wake_target_->request_wake();
        break;
    case Fc_token::Kind::on_off_mask:
        // Only a mask CHANGE can unblock (or block) anything; an active
        // downstream router republishes the same mask every cycle.
        if (token.stop_mask != stop_mask_) {
            stop_mask_ = token.stop_mask;
            ++state_gen_;
            if (wake_on_token_ && wake_target_ != nullptr)
                wake_target_->request_wake();
        }
        break;
    case Fc_token::Kind::ack: {
        // Cumulative: everything up to and including link_seq is accepted.
        bool retired = false;
        while (!retransmit_.empty() && base_seq_ <= token.link_seq) {
            pool_->release(retransmit_.pop());
            ++base_seq_;
            if (send_idx_ > 0) --send_idx_;
            retired = true;
        }
        // Retired slots free window space, which is what can_send() gates
        // on for ACK/NACK — relevant only to a blocked-sleeping owner.
        if (retired) {
            ++state_gen_;
            if (wake_on_token_ && wake_target_ != nullptr)
                wake_target_->request_wake();
        }
        break;
    }
    case Fc_token::Kind::nack:
        // Rewind to the sequence number the receiver expects.
        if (token.link_seq >= base_seq_ &&
            token.link_seq - base_seq_ <= retransmit_.size()) {
            send_idx_ = token.link_seq - base_seq_;
            // The rewind creates transmission work: the owner may be asleep
            // with a caught-up window, so always re-arm it.
            if (send_idx_ < retransmit_.size() && wake_target_ != nullptr)
                wake_target_->request_wake();
        }
        break;
    }
}

bool Link_sender::can_send(int vc) const
{
    if (failed_) return false;
    if (sent_this_cycle_) return false;
    if (ejection_) return true;
    switch (fc_) {
    case Flow_control_kind::credit:
        return credits_[static_cast<std::size_t>(vc)] > 0;
    case Flow_control_kind::on_off:
        return ((stop_mask_ >> vc) & 1u) == 0;
    case Flow_control_kind::ack_nack:
        return !retransmit_.full();
    }
    return false;
}

void Link_sender::send(Flit_ref ref)
{
    NOC_ASSERT(!sent_this_cycle_, "Link_sender: two sends in one cycle");
    sent_this_cycle_ = true;
    ++flits_sent_;
    if (!ejection_) {
        ++state_gen_; // a credit or window slot is consumed below
        switch (fc_) {
        case Flow_control_kind::credit:
            NOC_ASSERT(credits_[(*pool_)[ref].vc] > 0,
                       "Link_sender: send without credit");
            --credits_[(*pool_)[ref].vc];
            break;
        case Flow_control_kind::on_off:
            break;
        case Flow_control_kind::ack_nack:
            (*pool_)[ref].link_seq = next_seq_++;
            retransmit_.push(ref); // owns the slot until ACKed
            return;                // transmitted by end_cycle()
        }
    }
    data_->count_transfer();
    data_->write(ref);
}

void Link_sender::transmit_from_window()
{
    if (send_idx_ >= retransmit_.size()) return;
    const Flit_ref ref = retransmit_[send_idx_];
    const std::uint32_t seq = (*pool_)[ref].link_seq;
    // A flit is a retransmission when its sequence number was already put on
    // the wire once (i.e. it is at or below the wire high-water mark).
    if (wire_mark_valid_ && seq <= wire_mark_) ++retransmissions_;
    wire_mark_ = wire_mark_valid_ ? std::max(wire_mark_, seq) : seq;
    wire_mark_valid_ = true;
    // The wire carries an owned COPY of the window slot, not a borrow: with
    // go-back-N the same sequence number can be in flight twice, and the
    // ACK for the first transmission may retire (and recycle) the window
    // slot while the duplicate is still crossing the link. The receiver
    // owns the copy — it releases drops and keeps accepts (arch/flit.h).
    const Flit_ref wire = pool_->acquire_uninitialized();
    (*pool_)[wire] = (*pool_)[ref];
    data_->count_transfer();
    data_->write(wire);
    ++send_idx_;
}

int Link_sender::credits(int vc) const
{
    return credits_[static_cast<std::size_t>(vc)];
}

} // namespace noc
