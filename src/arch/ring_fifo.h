// Power-of-two ring FIFO used for router input VCs, NI source queues and
// ACK/NACK retransmission windows.
//
// Replaces the deque-backed Bounded_fifo on every flit hot path: storage is
// one contiguous power-of-two array indexed with a mask (no modulo, no
// deque segment chasing, no per-push allocation), elements are meant to be
// 4-byte Flit_ref handles, and the empty/overflow guards are NOC_DEBUG
// assertions rather than always-on throws. Like Bounded_fifo it counts
// lifetime writes and reads, which is the buffer-activity input to the
// power models.
//
// Two flavours, chosen at construction:
//   * bounded  — full() reflects the *logical* capacity (which need not be
//                a power of two: a depth-6 VC buffer occupies an 8-slot
//                ring but still reports full at 6). Pushing past it is a
//                flow-control violation — callers that want the always-on
//                guard check full() themselves (Router::deliver_arrival).
//   * growable — full() is never true; pushing into a full ring doubles the
//                storage (source queues under open-loop overload).
#pragma once

#include "common/noc_assert.h"

#include <cstdint>
#include <vector>

namespace noc {

template<typename T>
class Ring_fifo {
public:
    explicit Ring_fifo(std::size_t capacity, bool growable = false)
        : capacity_{capacity}, growable_{growable}
    {
        if (capacity == 0) capacity_ = capacity = 1;
        std::size_t physical = 1;
        while (physical < capacity) physical <<= 1;
        slots_.resize(physical);
        mask_ = physical - 1;
    }

    [[nodiscard]] bool empty() const { return head_ == tail_; }
    [[nodiscard]] std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }
    [[nodiscard]] bool full() const
    {
        return !growable_ && size() >= capacity_;
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t free_slots() const
    {
        return capacity_ - size();
    }

    void push(T v)
    {
        if (size() == slots_.size()) {
            NOC_ASSERT(growable_,
                       "Ring_fifo overflow — flow control violated");
            if (growable_) grow();
        }
        NOC_ASSERT(growable_ || size() < capacity_,
                   "Ring_fifo overflow — flow control violated");
        slots_[tail_ & mask_] = v;
        ++tail_;
        ++writes_;
    }

    [[nodiscard]] const T& front() const
    {
        NOC_ASSERT(!empty(), "Ring_fifo::front on empty");
        return slots_[head_ & mask_];
    }

    /// Mutable front: lets a consumer update in-place state that rides with
    /// the queued element (an NI advancing the flit cursor of the packet
    /// record it is serializing).
    [[nodiscard]] T& front()
    {
        NOC_ASSERT(!empty(), "Ring_fifo::front on empty");
        return slots_[head_ & mask_];
    }

    /// i-th element from the front (0 = front). Used by the ACK/NACK
    /// retransmission window to replay from an arbitrary rewind point.
    [[nodiscard]] const T& operator[](std::size_t i) const
    {
        NOC_ASSERT(i < size(), "Ring_fifo: index out of range");
        return slots_[(head_ + i) & mask_];
    }

    /// Mutable i-th element: in-place updates of queued records (an NI
    /// rebinding route pointers after an online reconfiguration).
    [[nodiscard]] T& operator[](std::size_t i)
    {
        NOC_ASSERT(i < size(), "Ring_fifo: index out of range");
        return slots_[(head_ + i) & mask_];
    }

    T pop()
    {
        NOC_ASSERT(!empty(), "Ring_fifo::pop on empty");
        T v = slots_[head_ & mask_];
        ++head_;
        ++reads_;
        return v;
    }

    /// Remove the i-th element from the front, preserving order (shifts the
    /// tail side down). O(size - i); only used by the short NI GT queue,
    /// where slot-table gating may service connections out of FIFO order.
    T erase_at(std::size_t i)
    {
        NOC_ASSERT(i < size(), "Ring_fifo::erase_at out of range");
        T v = slots_[(head_ + i) & mask_];
        for (std::size_t k = i; k + 1 < size(); ++k)
            slots_[(head_ + k) & mask_] = slots_[(head_ + k + 1) & mask_];
        --tail_;
        ++reads_;
        return v;
    }

    /// Lifetime write/read counters (buffer activity for power models).
    [[nodiscard]] std::uint64_t write_count() const { return writes_; }
    [[nodiscard]] std::uint64_t read_count() const { return reads_; }

private:
    void grow()
    {
        // Relinearize into a ring of twice the size: logical order is
        // preserved, head resets to slot 0.
        std::vector<T> bigger(slots_.size() * 2);
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            bigger[i] = slots_[(head_ + i) & mask_];
        slots_ = std::move(bigger);
        mask_ = slots_.size() - 1;
        head_ = 0;
        tail_ = n;
        capacity_ = slots_.size();
    }

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    /// Monotonic positions; size = tail - head, physical slot = pos & mask.
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    std::size_t capacity_;
    bool growable_;
    std::uint64_t writes_ = 0;
    std::uint64_t reads_ = 0;
};

} // namespace noc
