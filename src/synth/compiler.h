// The "NoC hardware compiler" half of ×pipesCompiler [45] / Netchip [42]:
// turn a synthesized Design_point into a live cycle-accurate system with
// application traffic generators, and validate the run-time behaviour
// against the spec ("the tools also generate simulation models ... that can
// be used to validate the run-time behavior of the system", §6).
#pragma once

#include "arch/noc_system.h"
#include "synth/topology_synth.h"
#include "traffic/core_graph.h"

#include <memory>

namespace noc {

/// Network parameters matching a design point.
[[nodiscard]] Network_params network_params_for(const Design_point& dp,
                                                int buffer_depth = 4);

/// Instantiate the simulatable network (no traffic attached). `options`
/// selects the kernel schedule / partition / pool sizing
/// (arch/build_options.h); allow_partial_routes is always forced on —
/// synthesized designs route only the application's flows.
[[nodiscard]] std::unique_ptr<Noc_system> compile_design(
    const Design_point& dp, int buffer_depth = 4, Build_options options = {});

struct Validation_report {
    bool drained = false;
    bool bandwidth_met = false; ///< accepted >= 95% of offered
    bool latency_met = false;   ///< every constrained flow under its bound
    double offered_flits_per_cycle = 0.0;
    double accepted_flits_per_cycle = 0.0;
    /// Worst ratio of measured mean latency to the flow's bound (<= 1 ok).
    double worst_latency_ratio = 0.0;
    std::vector<std::string> violations;
};

/// Drive the compiled design with its application traffic for
/// `measure_cycles` and check the spec's bandwidth/latency constraints.
[[nodiscard]] Validation_report validate_design(const Design_point& dp,
                                                const Core_graph& graph,
                                                Cycle warmup_cycles = 2'000,
                                                Cycle measure_cycles = 20'000,
                                                int buffer_depth = 4,
                                                Build_options options = {});

} // namespace noc
