#include "synth/partition.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace noc {

namespace {

/// Symmetric core-to-core bandwidth matrix.
std::vector<std::vector<double>> affinity(const Core_graph& g)
{
    const auto n = static_cast<std::size_t>(g.core_count());
    std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
    for (const auto& f : g.flows()) {
        w[static_cast<std::size_t>(f.src)][static_cast<std::size_t>(f.dst)] +=
            f.bandwidth_mbps;
        w[static_cast<std::size_t>(f.dst)][static_cast<std::size_t>(f.src)] +=
            f.bandwidth_mbps;
    }
    return w;
}

} // namespace

double cut_bandwidth(const Core_graph& graph,
                     const std::vector<int>& core_cluster)
{
    double cut = 0.0;
    for (const auto& f : graph.flows())
        if (core_cluster.at(static_cast<std::size_t>(f.src)) !=
            core_cluster.at(static_cast<std::size_t>(f.dst)))
            cut += f.bandwidth_mbps;
    return cut;
}

Partition_result partition_cores(const Core_graph& graph, int k,
                                 int max_cores_per_cluster)
{
    const int n = graph.core_count();
    if (k < 1 || k > n)
        throw std::invalid_argument{"partition_cores: bad cluster count"};
    if (max_cores_per_cluster < 1 ||
        static_cast<long long>(k) * max_cores_per_cluster < n)
        throw std::invalid_argument{
            "partition_cores: capacity cannot hold all cores"};

    const auto w = affinity(graph);

    // Agglomeration: cluster ids are the smallest member core id.
    std::vector<int> cluster(static_cast<std::size_t>(n));
    std::iota(cluster.begin(), cluster.end(), 0);
    std::vector<int> size(static_cast<std::size_t>(n), 1);
    int clusters = n;

    auto inter_bw = [&](int a, int b) {
        double bw = 0.0;
        for (int i = 0; i < n; ++i) {
            if (cluster[static_cast<std::size_t>(i)] != a) continue;
            for (int j = 0; j < n; ++j)
                if (cluster[static_cast<std::size_t>(j)] == b)
                    bw += w[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(j)];
        }
        return bw;
    };

    while (clusters > k) {
        // Pick the mergeable pair with the heaviest traffic between them;
        // ties break toward smaller combined size, then lower ids.
        double best_bw = -1.0;
        int best_a = -1;
        int best_b = -1;
        for (int a = 0; a < n; ++a) {
            if (size[static_cast<std::size_t>(a)] == 0 ||
                cluster[static_cast<std::size_t>(a)] != a)
                continue;
            for (int b = a + 1; b < n; ++b) {
                if (size[static_cast<std::size_t>(b)] == 0 ||
                    cluster[static_cast<std::size_t>(b)] != b)
                    continue;
                if (size[static_cast<std::size_t>(a)] +
                        size[static_cast<std::size_t>(b)] >
                    max_cores_per_cluster)
                    continue;
                const double bw = inter_bw(a, b);
                const bool better =
                    bw > best_bw ||
                    (bw == best_bw && best_a >= 0 &&
                     size[static_cast<std::size_t>(a)] +
                             size[static_cast<std::size_t>(b)] <
                         size[static_cast<std::size_t>(best_a)] +
                             size[static_cast<std::size_t>(best_b)]);
                if (better) {
                    best_bw = bw;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        if (best_a < 0)
            throw std::logic_error{
                "partition_cores: no mergeable pair (capacity too tight)"};
        for (int i = 0; i < n; ++i)
            if (cluster[static_cast<std::size_t>(i)] == best_b)
                cluster[static_cast<std::size_t>(i)] = best_a;
        size[static_cast<std::size_t>(best_a)] +=
            size[static_cast<std::size_t>(best_b)];
        size[static_cast<std::size_t>(best_b)] = 0;
        --clusters;
    }

    // Compact cluster ids to [0, k).
    std::vector<int> remap(static_cast<std::size_t>(n), -1);
    int next = 0;
    std::vector<int> result(static_cast<std::size_t>(n));
    std::vector<int> csize(static_cast<std::size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
        const int root = cluster[static_cast<std::size_t>(i)];
        if (remap[static_cast<std::size_t>(root)] < 0)
            remap[static_cast<std::size_t>(root)] = next++;
        result[static_cast<std::size_t>(i)] =
            remap[static_cast<std::size_t>(root)];
        ++csize[static_cast<std::size_t>(
            result[static_cast<std::size_t>(i)])];
    }

    // KL-style refinement: move a single core to another cluster while it
    // strictly improves the cut and respects capacity. Bounded passes keep
    // it deterministic and fast.
    for (int pass = 0; pass < 4; ++pass) {
        bool improved = false;
        for (int i = 0; i < n; ++i) {
            const int from = result[static_cast<std::size_t>(i)];
            if (csize[static_cast<std::size_t>(from)] == 1 && clusters == k)
                continue; // keep clusters non-empty
            // Gain of moving i to cluster c: traffic to c minus traffic to
            // its own cluster (i excluded).
            std::vector<double> to_cluster(static_cast<std::size_t>(k), 0.0);
            for (int j = 0; j < n; ++j)
                if (j != i)
                    to_cluster[static_cast<std::size_t>(
                        result[static_cast<std::size_t>(j)])] +=
                        w[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(j)];
            int best_c = from;
            double best_gain = 0.0;
            for (int c = 0; c < k; ++c) {
                if (c == from ||
                    csize[static_cast<std::size_t>(c)] >=
                        max_cores_per_cluster)
                    continue;
                const double gain = to_cluster[static_cast<std::size_t>(c)] -
                                    to_cluster[static_cast<std::size_t>(from)];
                if (gain > best_gain + 1e-9) {
                    best_gain = gain;
                    best_c = c;
                }
            }
            if (best_c != from) {
                result[static_cast<std::size_t>(i)] = best_c;
                --csize[static_cast<std::size_t>(from)];
                ++csize[static_cast<std::size_t>(best_c)];
                improved = true;
            }
        }
        if (!improved) break;
    }

    Partition_result out;
    out.core_cluster = std::move(result);
    out.cluster_count = k;
    out.cut_bandwidth_mbps = cut_bandwidth(graph, out.core_cluster);
    return out;
}

} // namespace noc
