#include "synth/path_alloc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace noc {

Path_allocator::Path_allocator(std::vector<int> cores_per_switch,
                               int max_radix, double link_capacity_flits,
                               Path_cost_params costs)
    : switch_count_{static_cast<int>(cores_per_switch.size())},
      max_radix_{max_radix},
      capacity_{link_capacity_flits},
      costs_{costs},
      out_links_(cores_per_switch.size()),
      out_used_{cores_per_switch},
      in_used_{std::move(cores_per_switch)}
{
    if (switch_count_ < 1)
        throw std::invalid_argument{"Path_allocator: no switches"};
    if (max_radix_ < 2 || capacity_ <= 0)
        throw std::invalid_argument{"Path_allocator: bad radix/capacity"};
    // A switch whose cores consume every port is still usable for purely
    // switch-local traffic; only an over-subscription is an error.
    for (const int used : out_used_)
        if (used > max_radix_)
            throw std::invalid_argument{
                "Path_allocator: cores exceed the switch radix"};
}

double Path_allocator::max_link_load() const
{
    double m = 0.0;
    for (const auto& l : links_) m = std::max(m, l.load);
    return m;
}

std::optional<std::vector<int>> Path_allocator::route_flow(int src_switch,
                                                           int dst_switch,
                                                           double load)
{
    if (src_switch < 0 || src_switch >= switch_count_ || dst_switch < 0 ||
        dst_switch >= switch_count_)
        throw std::invalid_argument{"route_flow: bad switch id"};
    if (load <= 0 || load > capacity_) return std::nullopt;
    if (src_switch == dst_switch) return std::vector<int>{};

    // State: (switch, phase). phase 0 = ascending ids, 1 = descending.
    // Edges: to every other switch, via the cheapest reusable link with
    // spare capacity or a freshly minted link if ports allow.
    struct Edge_choice {
        double cost = std::numeric_limits<double>::infinity();
        int link = -1; // -1 = new link
    };
    auto edge_choice = [&](int u, int v) {
        Edge_choice best;
        for (const int li : out_links_[static_cast<std::size_t>(u)]) {
            const auto& l = links_[static_cast<std::size_t>(li)];
            if (l.to != v || l.load + load > capacity_) continue;
            const double c = costs_.hop_cost +
                             costs_.congestion_weight * l.load / capacity_;
            if (c < best.cost) {
                best.cost = c;
                best.link = li;
            }
        }
        if (best.link < 0) {
            if (out_used_[static_cast<std::size_t>(u)] < max_radix_ &&
                in_used_[static_cast<std::size_t>(v)] < max_radix_) {
                best.cost = costs_.hop_cost + costs_.new_link_cost;
                best.link = -1;
            }
        }
        return best;
    };

    const int states = 2 * switch_count_;
    std::vector<double> dist(static_cast<std::size_t>(states),
                             std::numeric_limits<double>::infinity());
    struct Parent {
        int state = -1;
        int via_switch = -1; // predecessor switch
        int link = -2;       // -1 new, >=0 existing, -2 none
    };
    std::vector<Parent> parent(static_cast<std::size_t>(states));

    using Qe = std::pair<double, int>;
    std::priority_queue<Qe, std::vector<Qe>, std::greater<>> pq;
    const int start = 2 * src_switch;
    dist[static_cast<std::size_t>(start)] = 0.0;
    pq.push({0.0, start});

    while (!pq.empty()) {
        const auto [d, state] = pq.top();
        pq.pop();
        if (d > dist[static_cast<std::size_t>(state)] + 1e-12) continue;
        const int u = state / 2;
        const int phase = state % 2;
        for (int v = 0; v < switch_count_; ++v) {
            if (v == u) continue;
            const bool up = v > u;
            if (phase == 1 && up) continue; // no down -> up
            const auto choice = edge_choice(u, v);
            if (!std::isfinite(choice.cost)) continue;
            const int nstate = 2 * v + (up ? 0 : 1);
            const double nd = d + choice.cost;
            if (nd + 1e-12 < dist[static_cast<std::size_t>(nstate)]) {
                dist[static_cast<std::size_t>(nstate)] = nd;
                parent[static_cast<std::size_t>(nstate)] = {state, u,
                                                            choice.link};
                pq.push({nd, nstate});
            }
        }
    }

    int goal = -1;
    const int down_state = 2 * dst_switch + 1;
    const int up_state = 2 * dst_switch;
    if (std::isfinite(dist[static_cast<std::size_t>(down_state)]) &&
        (!std::isfinite(dist[static_cast<std::size_t>(up_state)]) ||
         dist[static_cast<std::size_t>(down_state)] <=
             dist[static_cast<std::size_t>(up_state)]))
        goal = down_state;
    else if (std::isfinite(dist[static_cast<std::size_t>(up_state)]))
        goal = up_state;
    if (goal < 0) return std::nullopt;

    // Reconstruct switch sequence.
    struct Step {
        int from;
        int to;
        int link;
    };
    std::vector<Step> steps;
    for (int s = goal; s != start;
         s = parent[static_cast<std::size_t>(s)].state) {
        const auto& pa = parent[static_cast<std::size_t>(s)];
        steps.push_back({pa.via_switch, s / 2, pa.link});
    }
    std::reverse(steps.begin(), steps.end());

    // Materialize: mint new links, accumulate load.
    std::vector<int> path;
    for (const auto& st : steps) {
        int li = st.link;
        if (li < 0) {
            // Port budget may have changed if this same path mints two
            // links at one switch — re-check before committing.
            if (out_used_[static_cast<std::size_t>(st.from)] >= max_radix_ ||
                in_used_[static_cast<std::size_t>(st.to)] >= max_radix_)
                return std::nullopt;
            li = static_cast<int>(links_.size());
            links_.push_back({st.from, st.to, 0.0});
            out_links_[static_cast<std::size_t>(st.from)].push_back(li);
            ++out_used_[static_cast<std::size_t>(st.from)];
            ++in_used_[static_cast<std::size_t>(st.to)];
        }
        links_[static_cast<std::size_t>(li)].load += load;
        path.push_back(li);
    }
    return path;
}

} // namespace noc
