#include "synth/pareto.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace noc {

bool dominates(const Design_metrics& a, const Design_metrics& b)
{
    const bool no_worse = a.power_mw <= b.power_mw &&
                          a.latency_ns <= b.latency_ns &&
                          a.area_mm2 <= b.area_mm2;
    const bool strictly_better = a.power_mw < b.power_mw ||
                                 a.latency_ns < b.latency_ns ||
                                 a.area_mm2 < b.area_mm2;
    return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_front(
    const std::vector<Design_metrics>& points)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            if (j != i && dominates(points[j], points[i])) dominated = true;
        if (!dominated) front.push_back(i);
    }
    return front;
}

std::size_t pick_weighted(const std::vector<Design_metrics>& points,
                          double power_weight, double latency_weight,
                          double area_weight)
{
    if (points.empty())
        throw std::invalid_argument{"pick_weighted: no points"};
    // Normalize each axis by its max so weights are unitless.
    Design_metrics maxima{1e-12, 1e-12, 1e-12};
    for (const auto& p : points) {
        maxima.power_mw = std::max(maxima.power_mw, p.power_mw);
        maxima.latency_ns = std::max(maxima.latency_ns, p.latency_ns);
        maxima.area_mm2 = std::max(maxima.area_mm2, p.area_mm2);
    }
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double score =
            power_weight * points[i].power_mw / maxima.power_mw +
            latency_weight * points[i].latency_ns / maxima.latency_ns +
            area_weight * points[i].area_mm2 / maxima.area_mm2;
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

} // namespace noc
