// SunFloor-style application-specific topology synthesis (§2, §6, [11]).
//
// "Based on the specifications, the topology synthesis tool builds several
// topologies with different switch counts and architectural parameters ...
// with each design point having different power, area and performance
// values. From the set of all Pareto optimal points, the designer can then
// choose a NoC instance."
//
// Per (operating point, switch count):
//   1. min-cut clustering of cores onto switches (synth/partition.h);
//   2. flows routed in decreasing-bandwidth order over a marginal-cost
//      Dijkstra that mints links under radix and capacity budgets, with
//      deadlock freedom by construction (synth/path_alloc.h);
//   3. floorplan-aware switch placement (phys/floorplan.h), wire-length-
//      driven link pipelining (phys/wire_model.h);
//   4. analytic power/latency/area from the physical models, feasibility
//      checks (bandwidth, per-flow latency bounds, router timing at the
//      target clock);
// then Pareto extraction over all feasible design points.
#pragma once

#include "synth/pareto.h"
#include "synth/spec.h"
#include "topology/graph.h"
#include "topology/route.h"

#include <optional>
#include <string>
#include <vector>

namespace noc {

struct Design_point {
    std::string name;
    Operating_point op;
    int switch_count = 0;

    Topology topology{"unset", 1};
    Route_set routes;              ///< filled for communicating pairs only
    std::vector<int> core_cluster; ///< core -> switch
    std::vector<double> link_load; ///< flits/cycle per link id
    std::vector<double> link_length_mm;
    std::optional<Floorplan> floorplan; ///< with NoC blocks inserted

    Design_metrics metrics;        ///< power / latency / area
    double max_link_utilization = 0.0;
    double min_router_freq_ghz = 0.0;
    double worst_latency_slack_ns = 0.0; ///< min over constrained flows
    int total_pipeline_stages = 0;

    /// Per-flow analytic latency (ns), indexed by flow id.
    std::vector<double> flow_latency_ns;
};

struct Synthesis_result {
    std::vector<Design_point> designs; ///< all feasible points
    std::vector<std::string> rejections; ///< why candidate points failed

    [[nodiscard]] std::vector<std::size_t> pareto() const;
    /// Weighted pick over the Pareto front (indices into designs).
    [[nodiscard]] const Design_point& pick(double power_w = 1.0,
                                           double latency_w = 0.3,
                                           double area_w = 0.1) const;
};

[[nodiscard]] Synthesis_result synthesize_topologies(
    const Synthesis_spec& spec);

/// Synthesize a single candidate (exposed for tests and ablations);
/// nullopt + reason when infeasible.
[[nodiscard]] std::optional<Design_point>
synthesize_one(const Synthesis_spec& spec, const Operating_point& op,
               int switch_count, std::string* reason = nullptr);

} // namespace noc
