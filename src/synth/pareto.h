// Pareto filtering over (power, latency, area) — "from the set of all
// Pareto optimal points, the designer can then choose a NoC instance" (§6).
#pragma once

#include <cstddef>
#include <vector>

namespace noc {

struct Design_metrics {
    double power_mw = 0.0;
    double latency_ns = 0.0;
    double area_mm2 = 0.0;
};

/// a dominates b: no worse on every axis, strictly better on one.
[[nodiscard]] bool dominates(const Design_metrics& a,
                             const Design_metrics& b);

/// Indices of the non-dominated points, in input order.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<Design_metrics>& points);

/// Scalarized pick from the front: minimize the weighted normalized sum.
/// Returns the index into `points`; requires a non-empty input.
[[nodiscard]] std::size_t pick_weighted(
    const std::vector<Design_metrics>& points, double power_weight,
    double latency_weight, double area_weight);

} // namespace noc
