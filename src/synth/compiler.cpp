#include "synth/compiler.h"

#include "common/table.h"
#include "traffic/flow_traffic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace noc {

Network_params network_params_for(const Design_point& dp, int buffer_depth)
{
    Network_params np;
    np.flit_width_bits = dp.op.flit_width_bits;
    np.clock_ghz = dp.op.clock_ghz;
    np.buffer_depth = buffer_depth;
    np.route_vcs = 1; // synthesized routes are order-based, single VC
    np.fc = Flow_control_kind::credit;
    return np;
}

std::unique_ptr<Noc_system> compile_design(const Design_point& dp,
                                           int buffer_depth,
                                           Build_options options)
{
    options.allow_partial_routes = true;
    return std::make_unique<Noc_system>(dp.topology, dp.routes,
                                        network_params_for(dp, buffer_depth),
                                        std::move(options));
}

Validation_report validate_design(const Design_point& dp,
                                  const Core_graph& graph,
                                  Cycle warmup_cycles, Cycle measure_cycles,
                                  int buffer_depth, Build_options options)
{
    auto sys = compile_design(dp, buffer_depth, std::move(options));
    double offered = 0.0;
    for (int c = 0; c < graph.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Flow_source::Params fp;
        fp.clock_ghz = dp.op.clock_ghz;
        fp.flit_width_bits = dp.op.flit_width_bits;
        fp.seed = 1234 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Flow_source>(core, graph, fp));
    }
    for (const auto& f : graph.flows())
        offered += flits_per_cycle_for(f.bandwidth_mbps, dp.op.clock_ghz,
                                       dp.op.flit_width_bits,
                                       f.packet_bytes);

    sys->warmup(warmup_cycles);
    sys->measure(measure_cycles);

    Validation_report rep;
    rep.drained = sys->drain(measure_cycles * 4);
    rep.offered_flits_per_cycle = offered;
    rep.accepted_flits_per_cycle = sys->stats().accepted_flits_per_cycle();
    rep.bandwidth_met =
        rep.drained && rep.accepted_flits_per_cycle >= 0.95 * offered;
    if (!rep.bandwidth_met)
        rep.violations.push_back(
            "accepted " + format_double(rep.accepted_flits_per_cycle, 3) +
            " of offered " + format_double(offered, 3) + " flits/cycle");

    rep.latency_met = true;
    for (int i = 0; i < graph.flow_count(); ++i) {
        const Flow_id fid{static_cast<std::uint32_t>(i)};
        const Flow_spec& f = graph.flow(fid);
        if (f.max_latency_ns <= 0) continue;
        const auto& acc = sys->stats().flow_latency(fid);
        if (acc.count() == 0) continue; // too slow a flow to observe
        const double mean_ns = acc.mean() / dp.op.clock_ghz;
        const double ratio = mean_ns / f.max_latency_ns;
        rep.worst_latency_ratio = std::max(rep.worst_latency_ratio, ratio);
        if (ratio > 1.0) {
            rep.latency_met = false;
            rep.violations.push_back(
                "flow " + std::to_string(i) + ": " +
                format_double(mean_ns, 1) + " ns vs bound " +
                format_double(f.max_latency_ns, 1));
        }
    }
    return rep;
}

} // namespace noc
