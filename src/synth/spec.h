// Synthesis specification — the left-hand side of Fig. 6's tool flow:
// application architecture + communication constraints (+ optional
// floorplan) + technology characterization.
#pragma once

#include "phys/floorplan.h"
#include "phys/technology.h"
#include "traffic/core_graph.h"

#include <vector>

namespace noc {

/// One (frequency, flit width) point of the architectural-parameter sweep
/// ("setting architectural parameters such as frequency of operation, link
/// width", §6).
struct Operating_point {
    double clock_ghz = 1.0;
    int flit_width_bits = 32;

    friend constexpr bool operator==(const Operating_point&,
                                     const Operating_point&) = default;
};

struct Synthesis_spec {
    Core_graph graph;
    Technology tech;
    std::vector<Operating_point> operating_points{{1.0, 32}};

    /// Switch-count sweep; 0 = automatic upper bound (core count).
    int min_switches = 1;
    int max_switches = 0;
    /// Hard cap on any switch's port count (ties to Fig. 2 routability).
    int max_switch_radix = 10;
    /// Keep peak link utilization below this fraction of capacity.
    double link_utilization_cap = 0.7;
    int buffer_depth = 4;

    /// Use a floorplan for wire lengths (input_floorplan if provided, else
    /// a generated shelf floorplan); false = unit-length links.
    bool use_floorplan = true;
    const Floorplan* input_floorplan = nullptr;
    /// Wire-length assumption when use_floorplan is false, mm.
    double default_link_mm = 2.0;
    /// Timing margin left for logic when pipelining wires.
    double wire_margin = 0.35;

    /// Override the built-in min-cut clustering with a fixed core->switch
    /// assignment (used by the 3D flow to keep clusters layer-pure). Length
    /// must equal the core count; ids must be < the requested switch count.
    const std::vector<int>* fixed_core_cluster = nullptr;

    void validate() const;
};

} // namespace noc
