// Deadlock-free path allocation on a growing custom switch graph.
//
// SunFloor routes flows in decreasing bandwidth order over a cost metric
// that charges for new links/ports and for congestion, while keeping the
// routing function deadlock-free. We obtain deadlock freedom *by
// construction* instead of by check-and-retry: every path must ascend in
// switch id and then descend (an up*/down* discipline over the total order
// of switch ids), which makes the channel dependency graph acyclic for any
// set of such paths — the turn-prohibition equivalent the literature uses.
// Within that class, a Dijkstra over (switch, phase) states picks the
// cheapest mix of reusing existing links and minting new ones.
#pragma once

#include "common/types.h"

#include <optional>
#include <vector>

namespace noc {

/// A unidirectional synthesized link with its accumulated load.
struct Synth_link {
    int from = 0;
    int to = 0;
    double load = 0.0; ///< flits/cycle
};

struct Path_cost_params {
    /// Cost of minting a new link (router ports + wiring).
    double new_link_cost = 3.0;
    /// Base cost per hop over an existing link.
    double hop_cost = 1.0;
    /// Additional congestion-proportional cost (load / capacity weighted).
    double congestion_weight = 1.0;
};

class Path_allocator {
public:
    /// `cores_per_switch` seeds the used-port counters (each attached core
    /// consumes one input and one output port).
    Path_allocator(std::vector<int> cores_per_switch, int max_radix,
                   double link_capacity_flits,
                   Path_cost_params costs = {});

    /// Route `load` flits/cycle from src_switch to dst_switch; returns the
    /// traversed link indices (into links()), creating links and
    /// accumulating load. nullopt when no feasible path exists.
    [[nodiscard]] std::optional<std::vector<int>>
    route_flow(int src_switch, int dst_switch, double load);

    [[nodiscard]] const std::vector<Synth_link>& links() const
    {
        return links_;
    }
    [[nodiscard]] double link_capacity() const { return capacity_; }
    [[nodiscard]] int out_ports_used(int sw) const
    {
        return out_used_[static_cast<std::size_t>(sw)];
    }
    [[nodiscard]] int in_ports_used(int sw) const
    {
        return in_used_[static_cast<std::size_t>(sw)];
    }
    [[nodiscard]] double max_link_load() const;

private:
    int switch_count_;
    int max_radix_;
    double capacity_;
    Path_cost_params costs_;
    std::vector<Synth_link> links_;
    std::vector<std::vector<int>> out_links_; // switch -> link indices
    std::vector<int> out_used_;
    std::vector<int> in_used_;
};

} // namespace noc
