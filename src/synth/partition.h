// Core-to-switch clustering: the first step of custom topology synthesis.
//
// Greedy agglomeration (merge the pair of clusters with the heaviest
// inter-cluster traffic) down to k clusters, followed by a
// Kernighan-Lin-style refinement pass that moves single cores while it
// improves the cut — minimizing the bandwidth that must cross switches,
// under a cores-per-switch cap that reserves ports for inter-switch links.
#pragma once

#include "traffic/core_graph.h"

#include <vector>

namespace noc {

struct Partition_result {
    /// cluster id per core, in [0, cluster_count).
    std::vector<int> core_cluster;
    int cluster_count = 0;
    /// Total bandwidth (MB/s) crossing cluster boundaries.
    double cut_bandwidth_mbps = 0.0;
};

/// Partition `graph` into exactly `k` clusters with at most
/// `max_cores_per_cluster` cores each. Throws when infeasible
/// (k * max_cores_per_cluster < core_count or k > core_count).
[[nodiscard]] Partition_result partition_cores(const Core_graph& graph,
                                               int k,
                                               int max_cores_per_cluster);

/// Cut bandwidth of an arbitrary assignment (exposed for tests).
[[nodiscard]] double cut_bandwidth(const Core_graph& graph,
                                   const std::vector<int>& core_cluster);

} // namespace noc
