#include "synth/topology_synth.h"

#include "common/log.h"
#include "common/table.h"
#include "phys/router_model.h"
#include "phys/wire_model.h"
#include "synth/partition.h"
#include "synth/path_alloc.h"
#include "topology/deadlock.h"
#include "traffic/flow_traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace noc {
namespace {

std::string format_clock(const Operating_point& op)
{
    return format_double(op.clock_ghz, 2) + "GHz_w" +
           std::to_string(op.flit_width_bits);
}

} // namespace
} // namespace noc

namespace noc {

void Synthesis_spec::validate() const
{
    graph.validate();
    if (operating_points.empty())
        throw std::invalid_argument{"Synthesis_spec: no operating points"};
    for (const auto& op : operating_points)
        if (op.clock_ghz <= 0 || op.flit_width_bits <= 0)
            throw std::invalid_argument{"Synthesis_spec: bad op point"};
    if (min_switches < 1)
        throw std::invalid_argument{"Synthesis_spec: min_switches < 1"};
    if (max_switches != 0 && max_switches < min_switches)
        throw std::invalid_argument{"Synthesis_spec: switch range empty"};
    if (max_switch_radix < 3)
        throw std::invalid_argument{"Synthesis_spec: radix too small"};
    if (link_utilization_cap <= 0 || link_utilization_cap > 1)
        throw std::invalid_argument{"Synthesis_spec: bad utilization cap"};
    if (input_floorplan != nullptr &&
        input_floorplan->block_count() < graph.core_count())
        throw std::invalid_argument{
            "Synthesis_spec: floorplan lacks core blocks"};
}

namespace {

/// Flows aggregated per (src, dst) core pair — one route per pair.
struct Pair_demand {
    Core_id src;
    Core_id dst;
    double load_flits_per_cycle = 0.0;
    std::vector<Flow_id> flows;
};

std::vector<Pair_demand> aggregate_demands(const Core_graph& g,
                                           const Operating_point& op)
{
    std::map<std::pair<int, int>, Pair_demand> by_pair;
    for (int i = 0; i < g.flow_count(); ++i) {
        const Flow_id fid{static_cast<std::uint32_t>(i)};
        const Flow_spec& f = g.flow(fid);
        auto& d = by_pair[{f.src, f.dst}];
        d.src = Core_id{static_cast<std::uint32_t>(f.src)};
        d.dst = Core_id{static_cast<std::uint32_t>(f.dst)};
        d.load_flits_per_cycle +=
            flits_per_cycle_for(f.bandwidth_mbps, op.clock_ghz,
                                op.flit_width_bits, f.packet_bytes);
        d.flows.push_back(fid);
    }
    std::vector<Pair_demand> out;
    out.reserve(by_pair.size());
    for (auto& [key, d] : by_pair) out.push_back(std::move(d));
    // Decreasing bandwidth: heavy flows get the short, fresh paths.
    std::stable_sort(out.begin(), out.end(),
                     [](const Pair_demand& a, const Pair_demand& b) {
                         return a.load_flits_per_cycle >
                                b.load_flits_per_cycle;
                     });
    return out;
}

} // namespace

std::optional<Design_point> synthesize_one(const Synthesis_spec& spec,
                                           const Operating_point& op,
                                           int switch_count,
                                           std::string* reason)
{
    auto fail = [&](const std::string& why) -> std::optional<Design_point> {
        if (reason)
            *reason = "k=" + std::to_string(switch_count) + " @" +
                      format_clock(op) + ": " + why;
        return std::nullopt;
    };

    const Core_graph& g = spec.graph;
    const int n = g.core_count();

    // 1. Clustering. Reserve ports on each switch for inter-switch links.
    const int reserve = switch_count == 1
                            ? 0
                            : std::min(3, spec.max_switch_radix - 1);
    const int max_cores = spec.max_switch_radix - reserve;
    if (max_cores < 1 ||
        static_cast<long long>(max_cores) * switch_count < n)
        return fail("radix cannot host all cores");
    Partition_result part;
    if (spec.fixed_core_cluster != nullptr) {
        if (spec.fixed_core_cluster->size() != static_cast<std::size_t>(n))
            return fail("fixed clustering has wrong length");
        part.core_cluster = *spec.fixed_core_cluster;
        part.cluster_count = switch_count;
        for (const int c : part.core_cluster)
            if (c < 0 || c >= switch_count)
                return fail("fixed clustering references bad switch");
        std::vector<int> sizes(static_cast<std::size_t>(switch_count), 0);
        for (const int c : part.core_cluster)
            if (++sizes[static_cast<std::size_t>(c)] > max_cores)
                return fail("fixed clustering overfills a switch");
        part.cut_bandwidth_mbps = cut_bandwidth(g, part.core_cluster);
    } else {
        try {
            part = partition_cores(g, switch_count, max_cores);
        } catch (const std::exception& e) {
            return fail(std::string{"partition: "} + e.what());
        }
    }

    // 2a. NI port feasibility: each core has one injection and one ejection
    // port of one flit/cycle; no topology can fix an oversubscribed NI.
    {
        std::vector<double> inject(static_cast<std::size_t>(n), 0.0);
        std::vector<double> eject(static_cast<std::size_t>(n), 0.0);
        for (const auto& f : g.flows()) {
            const double load =
                flits_per_cycle_for(f.bandwidth_mbps, op.clock_ghz,
                                    op.flit_width_bits, f.packet_bytes);
            inject[static_cast<std::size_t>(f.src)] += load;
            eject[static_cast<std::size_t>(f.dst)] += load;
        }
        for (int c = 0; c < n; ++c) {
            if (inject[static_cast<std::size_t>(c)] >
                spec.link_utilization_cap)
                return fail("core " + g.core(c).name +
                            " injection port oversubscribed (" +
                            format_double(inject[static_cast<std::size_t>(c)],
                                          2) +
                            " flits/cy)");
            if (eject[static_cast<std::size_t>(c)] >
                spec.link_utilization_cap)
                return fail("core " + g.core(c).name +
                            " ejection port oversubscribed (" +
                            format_double(eject[static_cast<std::size_t>(c)],
                                          2) +
                            " flits/cy)");
        }
    }

    // 2b. Path allocation.
    std::vector<int> cores_per_switch(static_cast<std::size_t>(switch_count),
                                      0);
    for (const int c : part.core_cluster)
        ++cores_per_switch[static_cast<std::size_t>(c)];
    Path_allocator alloc{cores_per_switch, spec.max_switch_radix,
                         spec.link_utilization_cap};
    const auto demands = aggregate_demands(g, op);
    std::vector<std::vector<int>> pair_paths; // link indices per demand
    for (const auto& d : demands) {
        const auto path = alloc.route_flow(
            part.core_cluster[d.src.get()], part.core_cluster[d.dst.get()],
            d.load_flits_per_cycle);
        if (!path)
            return fail("unroutable demand " +
                        std::to_string(d.src.get()) + "->" +
                        std::to_string(d.dst.get()) + " (" +
                        format_double(d.load_flits_per_cycle, 3) +
                        " flits/cy)");
        pair_paths.push_back(*path);
    }

    // 3. Build the topology; links in allocator order so Link_id == index.
    Design_point dp;
    dp.op = op;
    dp.switch_count = switch_count;
    dp.name = "k" + std::to_string(switch_count) + "_" + format_clock(op);
    dp.core_cluster = part.core_cluster;
    dp.topology = Topology{"synth_" + g.name() + "_" + dp.name,
                           switch_count};
    for (int c = 0; c < n; ++c)
        dp.topology.attach_core(Switch_id{static_cast<std::uint32_t>(
            part.core_cluster[static_cast<std::size_t>(c)])});
    for (const auto& l : alloc.links())
        dp.topology.add_link(Switch_id{static_cast<std::uint32_t>(l.from)},
                             Switch_id{static_cast<std::uint32_t>(l.to)});

    // 4. Routes per communicating pair.
    dp.routes = Route_set{n};
    std::vector<std::pair<Core_id, Route>> flow_routes;
    for (std::size_t di = 0; di < demands.size(); ++di) {
        const auto& d = demands[di];
        Route r;
        for (const int li : pair_paths[di])
            r.push_back({dp.topology
                             .output_port_of_link(
                                 Link_id{static_cast<std::uint32_t>(li)})
                             .get(),
                         0});
        r.push_back({dp.topology.ejection_port_of_core(d.dst).get(), 0});
        flow_routes.emplace_back(d.src, r);
        dp.routes.set(d.src, d.dst, std::move(r));
    }
    // Defense in depth: the order-based discipline must be cycle-free.
    if (!analyze_deadlock_flows(dp.topology, flow_routes, 1).acyclic)
        throw std::logic_error{
            "synthesize_one: ordered path allocation produced a CDG cycle "
            "(internal invariant violated)"};

    // 5. Floorplan-aware placement and wire lengths.
    dp.link_load.assign(alloc.links().size(), 0.0);
    for (std::size_t li = 0; li < alloc.links().size(); ++li)
        dp.link_load[li] = alloc.links()[li].load;
    std::vector<double> ni_wire_mm(static_cast<std::size_t>(n), 0.5);
    if (spec.use_floorplan) {
        Floorplan fp = spec.input_floorplan != nullptr
                           ? *spec.input_floorplan
                           : make_shelf_floorplan(g);
        // Place switches at the bandwidth-weighted centroid of their cores.
        for (int s = 0; s < switch_count; ++s) {
            const Switch_id sw{static_cast<std::uint32_t>(s)};
            double wx = 0.0;
            double wy = 0.0;
            double wsum = 0.0;
            for (const Core_id c : dp.topology.switch_cores(sw)) {
                double weight = 1.0;
                for (const auto& f : g.flows())
                    if (f.src == static_cast<int>(c.get()) ||
                        f.dst == static_cast<int>(c.get()))
                        weight += f.bandwidth_mbps;
                const Point p = fp.block_center(static_cast<int>(c.get()));
                wx += p.x * weight;
                wy += p.y * weight;
                wsum += weight;
            }
            const Point target = wsum > 0
                                     ? Point{wx / wsum, wy / wsum}
                                     : fp.die().center();
            Router_phys_params rp;
            rp.in_ports = dp.topology.input_port_count(sw);
            rp.out_ports = dp.topology.output_port_count(sw);
            rp.flit_width_bits = op.flit_width_bits;
            rp.buffer_depth = spec.buffer_depth;
            const auto phys = estimate_router(spec.tech, rp);
            const double side = std::sqrt(std::max(phys.footprint_mm2, 1e-4));
            const auto placed = fp.place_near(
                "sw" + std::to_string(s), side, side, target, true);
            if (!placed) return fail("floorplan has no room for switches");
            dp.topology.set_switch_position(sw,
                                            fp.block_center(*placed));
        }
        fp.validate();
        for (int c = 0; c < n; ++c) {
            const auto swp = dp.topology.switch_position(
                dp.topology.core_switch(Core_id{static_cast<std::uint32_t>(c)}));
            ni_wire_mm[static_cast<std::size_t>(c)] =
                manhattan(fp.block_center(c), *swp);
        }
        dp.floorplan = std::move(fp);
    } else {
        for (int s = 0; s < switch_count; ++s)
            dp.topology.set_switch_position(
                Switch_id{static_cast<std::uint32_t>(s)},
                {spec.default_link_mm * s, 0.0});
    }

    // 6. Wire-length-driven link pipelining + timing feasibility.
    dp.link_length_mm.assign(alloc.links().size(), spec.default_link_mm);
    for (int li = 0; li < dp.topology.link_count(); ++li) {
        const Link_id lid{static_cast<std::uint32_t>(li)};
        if (spec.use_floorplan) {
            const auto& l = dp.topology.link(lid);
            dp.link_length_mm[static_cast<std::size_t>(li)] =
                manhattan(*dp.topology.switch_position(l.from),
                          *dp.topology.switch_position(l.to));
        }
        const auto timing = pipeline_wire(
            spec.tech, dp.link_length_mm[static_cast<std::size_t>(li)],
            op.clock_ghz, spec.wire_margin);
        dp.topology.set_link_pipeline_stages(lid, timing.pipeline_stages);
        dp.total_pipeline_stages += timing.pipeline_stages;
    }

    dp.min_router_freq_ghz = spec.tech.max_clock_ghz;
    double area = 0.0;
    double leakage_mw = 0.0;
    double router_e_per_flit_total = 0.0; // sum over switches of e*load
    for (int s = 0; s < switch_count; ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        Router_phys_params rp;
        rp.in_ports = dp.topology.input_port_count(sw);
        rp.out_ports = dp.topology.output_port_count(sw);
        rp.flit_width_bits = op.flit_width_bits;
        rp.buffer_depth = spec.buffer_depth;
        const auto phys = estimate_router(spec.tech, rp);
        if (!phys.drc_feasible)
            return fail("switch " + std::to_string(s) +
                        " not routable (radix " +
                        std::to_string(std::max(rp.in_ports, rp.out_ports)) +
                        ")");
        dp.min_router_freq_ghz =
            std::min(dp.min_router_freq_ghz, phys.max_freq_ghz);
        area += phys.footprint_mm2;
        leakage_mw += phys.leakage_mw;
        // Flits/cycle through this switch: everything it emits.
        double through = 0.0;
        for (const Link_id l : dp.topology.out_links(sw))
            through += dp.link_load[l.get()];
        for (const Core_id c : dp.topology.switch_cores(sw))
            for (const auto& d : demands)
                if (d.dst == c) through += d.load_flits_per_cycle;
        router_e_per_flit_total += through * phys.energy_per_flit_pj;
    }
    if (dp.min_router_freq_ghz < op.clock_ghz)
        return fail("router timing (" +
                    format_double(dp.min_router_freq_ghz, 2) +
                    " GHz) below target clock");

    // 7. Power: P_mw = E_pJ/flit * flits/cycle * f_GHz.
    double link_power_mw = 0.0;
    for (std::size_t li = 0; li < dp.link_load.size(); ++li)
        link_power_mw += wire_energy_pj(spec.tech, dp.link_length_mm[li],
                                        op.flit_width_bits) *
                         dp.link_load[li] * op.clock_ghz;
    for (const auto& d : demands) {
        // NI injection and ejection wires.
        link_power_mw +=
            wire_energy_pj(spec.tech, ni_wire_mm[d.src.get()],
                           op.flit_width_bits) *
            d.load_flits_per_cycle * op.clock_ghz;
        link_power_mw +=
            wire_energy_pj(spec.tech, ni_wire_mm[d.dst.get()],
                           op.flit_width_bits) *
            d.load_flits_per_cycle * op.clock_ghz;
    }
    dp.metrics.power_mw =
        router_e_per_flit_total * op.clock_ghz + link_power_mw + leakage_mw;
    dp.metrics.area_mm2 = area;

    // 8. Latency per flow: 2 cycles per router + link pipeline stages +
    //    serialization + 1 ejection cycle, inflated by an M/D/1-style
    //    queueing factor at the hottest resource along the path (synthesis
    //    must not promise zero-load latency it cannot deliver under the
    //    designed utilization).
    dp.flow_latency_ns.assign(static_cast<std::size_t>(g.flow_count()), 0.0);
    dp.worst_latency_slack_ns = std::numeric_limits<double>::infinity();
    double weighted_latency = 0.0;
    double weight_sum = 0.0;
    for (std::size_t di = 0; di < demands.size(); ++di) {
        const auto& d = demands[di];
        int stages = 0;
        double path_rho = 0.0;
        for (const int li : pair_paths[di]) {
            stages += dp.topology
                          .link(Link_id{static_cast<std::uint32_t>(li)})
                          .pipeline_stages;
            path_rho = std::max(path_rho,
                                dp.link_load[static_cast<std::size_t>(li)]);
        }
        const int routers = static_cast<int>(pair_paths[di].size()) + 1;
        for (const Flow_id fid : d.flows) {
            const Flow_spec& f = g.flow(fid);
            std::uint32_t fpp = 0;
            flits_per_cycle_for(f.bandwidth_mbps, op.clock_ghz,
                                op.flit_width_bits, f.packet_bytes, &fpp);
            const double rho = std::min(0.95, path_rho);
            const double queueing =
                rho / (2.0 * (1.0 - rho)) * static_cast<double>(fpp);
            const double cycles =
                2.0 * routers + stages + 1.0 + (fpp - 1) + queueing;
            const double ns = cycles / op.clock_ghz;
            dp.flow_latency_ns[fid.get()] = ns;
            if (f.max_latency_ns > 0) {
                const double slack = f.max_latency_ns - ns;
                dp.worst_latency_slack_ns =
                    std::min(dp.worst_latency_slack_ns, slack);
                if (slack < 0)
                    return fail("flow " + std::to_string(fid.get()) +
                                " misses latency bound (" +
                                format_double(ns, 1) + " > " +
                                format_double(f.max_latency_ns, 1) + " ns)");
            }
            weighted_latency += ns * f.bandwidth_mbps;
            weight_sum += f.bandwidth_mbps;
        }
    }
    if (!std::isfinite(dp.worst_latency_slack_ns))
        dp.worst_latency_slack_ns = 0.0;
    dp.metrics.latency_ns =
        weight_sum > 0 ? weighted_latency / weight_sum : 0.0;

    dp.max_link_utilization =
        alloc.max_link_load() / 1.0; // capacity is 1 flit/cycle
    return dp;
}

Synthesis_result synthesize_topologies(const Synthesis_spec& spec)
{
    spec.validate();
    const int upper = spec.max_switches == 0 ? spec.graph.core_count()
                                             : spec.max_switches;
    Synthesis_result result;
    for (const auto& op : spec.operating_points) {
        for (int k = spec.min_switches; k <= upper; ++k) {
            std::string reason;
            auto dp = synthesize_one(spec, op, k, &reason);
            if (dp) {
                log_info("synth: accepted " + dp->name);
                result.designs.push_back(std::move(*dp));
            } else {
                log_debug("synth: rejected " + reason);
                result.rejections.push_back(std::move(reason));
            }
        }
    }
    return result;
}

std::vector<std::size_t> Synthesis_result::pareto() const
{
    std::vector<Design_metrics> metrics;
    metrics.reserve(designs.size());
    for (const auto& d : designs) metrics.push_back(d.metrics);
    return pareto_front(metrics);
}

const Design_point& Synthesis_result::pick(double power_w, double latency_w,
                                           double area_w) const
{
    if (designs.empty())
        throw std::logic_error{"Synthesis_result::pick: no feasible design"};
    const auto front = pareto();
    std::vector<Design_metrics> metrics;
    metrics.reserve(front.size());
    for (const auto i : front) metrics.push_back(designs[i].metrics);
    const auto best = pick_weighted(metrics, power_w, latency_w, area_w);
    return designs[front[best]];
}

} // namespace noc
