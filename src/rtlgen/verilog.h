// Structural Verilog generation — the deliverable of the NoC hardware
// compiler: "the RTL of the topology is automatically generated" (§6).
//
// One router module is emitted per distinct (inputs x outputs)
// configuration (heterogeneous NoCs instantiate several), plus an NI
// module, a link retiming stage, and a top-level netlist wiring every
// instance. The bodies are functional Verilog-2001 skeletons (FIFO +
// round-robin arbiter + source-route field decode) — enough for a
// downstream flow to elaborate; the golden functional model is the C++
// simulator. check_rtl() provides the structural self-verification the
// paper attributes to the flow (balanced modules, every instance's module
// defined, every wire driven and consumed).
#pragma once

#include "arch/params.h"
#include "topology/graph.h"

#include <string>
#include <vector>

namespace noc {

struct Rtl_output {
    std::string text;          ///< complete generated source
    int module_count = 0;      ///< definitions emitted
    int instance_count = 0;    ///< instantiations in the top level
    int wire_count = 0;        ///< nets declared in the top level
    std::vector<std::string> module_names;
};

[[nodiscard]] Rtl_output generate_rtl(const Topology& topology,
                                      const Network_params& params,
                                      const std::string& top_name = "noc_top");

struct Rtl_check {
    bool ok = true;
    int modules_defined = 0;
    int instances = 0;
    std::vector<std::string> problems;
};

/// Structural self-check of generated (or edited) RTL text.
[[nodiscard]] Rtl_check check_rtl(const std::string& text);

} // namespace noc
