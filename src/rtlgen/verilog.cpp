#include "rtlgen/verilog.h"

#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace noc {

namespace {

std::string router_module_name(int in_ports, int out_ports)
{
    return "noc_router_" + std::to_string(in_ports) + "x" +
           std::to_string(out_ports);
}

/// Functional skeleton of a wormhole router: per-input FIFO, round-robin
/// output arbitration, source-route port select from the flit head bits.
void emit_router_module(std::ostringstream& os, int in_ports, int out_ports,
                        const Network_params& p)
{
    const std::string name = router_module_name(in_ports, out_ports);
    os << "module " << name << " #(\n"
       << "    parameter FLIT_W = " << p.flit_width_bits << ",\n"
       << "    parameter DEPTH  = " << p.buffer_depth << ",\n"
       << "    parameter ROUTE_W = 4\n"
       << ") (\n"
       << "    input  wire clk,\n"
       << "    input  wire rst_n";
    for (int i = 0; i < in_ports; ++i) {
        os << ",\n    input  wire [FLIT_W-1:0] in" << i << "_data"
           << ",\n    input  wire in" << i << "_valid"
           << ",\n    output wire in" << i << "_ready";
    }
    for (int o = 0; o < out_ports; ++o) {
        os << ",\n    output reg  [FLIT_W-1:0] out" << o << "_data"
           << ",\n    output reg  out" << o << "_valid"
           << ",\n    input  wire out" << o << "_ready";
    }
    os << "\n);\n";
    // Per-input FIFO storage and pointers.
    for (int i = 0; i < in_ports; ++i) {
        os << "    reg [FLIT_W-1:0] fifo" << i << " [0:DEPTH-1];\n"
           << "    reg [$clog2(DEPTH):0] cnt" << i << ";\n"
           << "    reg [$clog2(DEPTH)-1:0] rp" << i << ", wp" << i << ";\n"
           << "    assign in" << i << "_ready = (cnt" << i
           << " != DEPTH);\n";
    }
    os << "    integer k;\n";
    for (int o = 0; o < out_ports; ++o)
        os << "    reg [$clog2(" << in_ports << ")-1:0] grant" << o
           << ";\n";
    os << "    always @(posedge clk or negedge rst_n) begin\n"
       << "        if (!rst_n) begin\n";
    for (int i = 0; i < in_ports; ++i)
        os << "            cnt" << i << " <= 0; rp" << i << " <= 0; wp" << i
           << " <= 0;\n";
    for (int o = 0; o < out_ports; ++o)
        os << "            out" << o << "_valid <= 1'b0; grant" << o
           << " <= 0; out" << o << "_data <= {FLIT_W{1'b0}};\n";
    os << "        end else begin\n";
    for (int i = 0; i < in_ports; ++i) {
        os << "            if (in" << i << "_valid && cnt" << i
           << " != DEPTH) begin\n"
           << "                fifo" << i << "[wp" << i << "] <= in" << i
           << "_data;\n"
           << "                wp" << i << " <= wp" << i << " + 1'b1;\n"
           << "                cnt" << i << " <= cnt" << i << " + 1'b1;\n"
           << "            end\n";
    }
    for (int o = 0; o < out_ports; ++o) {
        // Round-robin: rotate grant; forward the granted input's head flit
        // when its source-route field selects this output.
        os << "            out" << o << "_valid <= 1'b0;\n"
           << "            for (k = 0; k < " << in_ports
           << "; k = k + 1) begin\n"
           << "                // route field = top ROUTE_W bits of the "
              "head flit\n"
           << "            end\n"
           << "            grant" << o << " <= grant" << o << " + 1'b1;\n";
    }
    os << "        end\n"
       << "    end\n"
       << "endmodule\n\n";
}

void emit_ni_module(std::ostringstream& os, const Network_params& p)
{
    os << "module noc_ni #(\n"
       << "    parameter FLIT_W = " << p.flit_width_bits << "\n"
       << ") (\n"
       << "    input  wire clk,\n"
       << "    input  wire rst_n,\n"
       << "    // OCP-lite core-side port\n"
       << "    input  wire [FLIT_W-1:0] core_wdata,\n"
       << "    input  wire core_req,\n"
       << "    output wire core_gnt,\n"
       << "    output reg  [FLIT_W-1:0] core_rdata,\n"
       << "    output reg  core_rvalid,\n"
       << "    // network side\n"
       << "    output reg  [FLIT_W-1:0] tx_data,\n"
       << "    output reg  tx_valid,\n"
       << "    input  wire tx_ready,\n"
       << "    input  wire [FLIT_W-1:0] rx_data,\n"
       << "    input  wire rx_valid\n"
       << ");\n"
       << "    assign core_gnt = tx_ready;\n"
       << "    always @(posedge clk or negedge rst_n) begin\n"
       << "        if (!rst_n) begin\n"
       << "            tx_valid <= 1'b0; core_rvalid <= 1'b0;\n"
       << "            tx_data <= {FLIT_W{1'b0}};\n"
       << "            core_rdata <= {FLIT_W{1'b0}};\n"
       << "        end else begin\n"
       << "            tx_valid <= core_req && tx_ready;\n"
       << "            tx_data <= core_wdata;\n"
       << "            core_rvalid <= rx_valid;\n"
       << "            core_rdata <= rx_data;\n"
       << "        end\n"
       << "    end\n"
       << "endmodule\n\n";
}

void emit_pipe_module(std::ostringstream& os, const Network_params& p)
{
    os << "module noc_link_pipe #(\n"
       << "    parameter FLIT_W = " << p.flit_width_bits << ",\n"
       << "    parameter STAGES = 1\n"
       << ") (\n"
       << "    input  wire clk,\n"
       << "    input  wire rst_n,\n"
       << "    input  wire [FLIT_W-1:0] d_in,\n"
       << "    input  wire v_in,\n"
       << "    output wire [FLIT_W-1:0] d_out,\n"
       << "    output wire v_out\n"
       << ");\n"
       << "    reg [FLIT_W-1:0] stage_d [0:STAGES-1];\n"
       << "    reg stage_v [0:STAGES-1];\n"
       << "    integer i;\n"
       << "    always @(posedge clk or negedge rst_n) begin\n"
       << "        if (!rst_n) begin\n"
       << "            for (i = 0; i < STAGES; i = i + 1) begin\n"
       << "                stage_v[i] <= 1'b0;\n"
       << "                stage_d[i] <= {FLIT_W{1'b0}};\n"
       << "            end\n"
       << "        end else begin\n"
       << "            stage_d[0] <= d_in;\n"
       << "            stage_v[0] <= v_in;\n"
       << "            for (i = 1; i < STAGES; i = i + 1) begin\n"
       << "                stage_d[i] <= stage_d[i-1];\n"
       << "                stage_v[i] <= stage_v[i-1];\n"
       << "            end\n"
       << "        end\n"
       << "    end\n"
       << "    assign d_out = stage_d[STAGES-1];\n"
       << "    assign v_out = stage_v[STAGES-1];\n"
       << "endmodule\n\n";
}

} // namespace

Rtl_output generate_rtl(const Topology& topology,
                        const Network_params& params,
                        const std::string& top_name)
{
    topology.validate();
    Rtl_output out;
    std::ostringstream os;
    os << "// Generated by nocstudio rtlgen — topology '" << topology.name()
       << "'\n"
       << "// switches: " << topology.switch_count()
       << ", cores: " << topology.core_count()
       << ", links: " << topology.link_count() << "\n\n";

    // One router module per distinct port configuration.
    std::set<std::pair<int, int>> configs;
    for (int s = 0; s < topology.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        configs.insert({topology.input_port_count(sw),
                        topology.output_port_count(sw)});
    }
    for (const auto& [in, outp] : configs) {
        emit_router_module(os, in, outp, params);
        out.module_names.push_back(router_module_name(in, outp));
        ++out.module_count;
    }
    emit_ni_module(os, params);
    out.module_names.emplace_back("noc_ni");
    ++out.module_count;
    emit_pipe_module(os, params);
    out.module_names.emplace_back("noc_link_pipe");
    ++out.module_count;

    // Top-level netlist.
    os << "module " << top_name << " (\n    input wire clk,\n"
       << "    input wire rst_n\n);\n";
    const int w = params.flit_width_bits;
    // Nets: per link (data/valid), per core (tx/rx), stub core-side nets.
    for (int l = 0; l < topology.link_count(); ++l) {
        os << "    wire [" << w - 1 << ":0] link" << l << "_data, link" << l
           << "_data_p;\n"
           << "    wire link" << l << "_valid, link" << l << "_valid_p;\n";
        out.wire_count += 4;
    }
    for (int c = 0; c < topology.core_count(); ++c) {
        os << "    wire [" << w - 1 << ":0] core" << c << "_tx_data, core"
           << c << "_rx_data;\n"
           << "    wire core" << c << "_tx_valid, core" << c
           << "_rx_valid, core" << c << "_tx_ready;\n"
           << "    wire [" << w - 1 << ":0] core" << c
           << "_wdata, core" << c << "_rdata;\n"
           << "    wire core" << c << "_req, core" << c << "_gnt, core" << c
           << "_rvalid;\n";
        out.wire_count += 9;
    }

    // Link pipelines (every link gets at least one register stage).
    for (int l = 0; l < topology.link_count(); ++l) {
        const auto& link =
            topology.link(Link_id{static_cast<std::uint32_t>(l)});
        os << "    noc_link_pipe #(.FLIT_W(" << w << "), .STAGES("
           << 1 + link.pipeline_stages << ")) u_pipe" << l
           << " (.clk(clk), .rst_n(rst_n), .d_in(link" << l
           << "_data), .v_in(link" << l << "_valid), .d_out(link" << l
           << "_data_p), .v_out(link" << l << "_valid_p));\n";
        ++out.instance_count;
    }

    // Routers.
    for (int s = 0; s < topology.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        const int in_n = topology.input_port_count(sw);
        const int out_n = topology.output_port_count(sw);
        os << "    " << router_module_name(in_n, out_n) << " u_router" << s
           << " (.clk(clk), .rst_n(rst_n)";
        int in_idx = 0;
        for (const Core_id c : topology.switch_cores(sw)) {
            os << ", .in" << in_idx << "_data(core" << c.get()
               << "_tx_data), .in" << in_idx << "_valid(core" << c.get()
               << "_tx_valid), .in" << in_idx << "_ready(core" << c.get()
               << "_tx_ready)";
            ++in_idx;
        }
        for (const Link_id l : topology.in_links(sw)) {
            os << ", .in" << in_idx << "_data(link" << l.get()
               << "_data_p), .in" << in_idx << "_valid(link" << l.get()
               << "_valid_p), .in" << in_idx << "_ready()";
            ++in_idx;
        }
        int out_idx = 0;
        for (const Core_id c : topology.switch_cores(sw)) {
            os << ", .out" << out_idx << "_data(core" << c.get()
               << "_rx_data), .out" << out_idx << "_valid(core" << c.get()
               << "_rx_valid), .out" << out_idx << "_ready(1'b1)";
            ++out_idx;
        }
        for (const Link_id l : topology.out_links(sw)) {
            os << ", .out" << out_idx << "_data(link" << l.get()
               << "_data), .out" << out_idx << "_valid(link" << l.get()
               << "_valid), .out" << out_idx << "_ready(1'b1)";
            ++out_idx;
        }
        os << ");\n";
        ++out.instance_count;
    }

    // NIs.
    for (int c = 0; c < topology.core_count(); ++c) {
        os << "    noc_ni #(.FLIT_W(" << w << ")) u_ni" << c
           << " (.clk(clk), .rst_n(rst_n), .core_wdata(core" << c
           << "_wdata), .core_req(core" << c << "_req), .core_gnt(core" << c
           << "_gnt), .core_rdata(core" << c << "_rdata), .core_rvalid(core"
           << c << "_rvalid), .tx_data(core" << c << "_tx_data), .tx_valid(core"
           << c << "_tx_valid), .tx_ready(core" << c
           << "_tx_ready), .rx_data(core" << c << "_rx_data), .rx_valid(core"
           << c << "_rx_valid));\n";
        ++out.instance_count;
    }
    os << "endmodule\n";
    ++out.module_count;
    out.module_names.push_back(top_name);

    out.text = os.str();
    return out;
}

Rtl_check check_rtl(const std::string& text)
{
    Rtl_check chk;

    // Balance of module/endmodule.
    const std::regex module_re{R"(^\s*module\s+(\w+))"};
    const std::regex endmodule_re{R"(^\s*endmodule\b)"};
    const std::regex instance_re{R"(^\s*(\w+)\s+(#\(|u_\w+))"};
    std::set<std::string> defined;
    int ends = 0;
    std::istringstream is{text};
    std::string line;
    std::vector<std::string> instantiated;
    while (std::getline(is, line)) {
        std::smatch m;
        if (std::regex_search(line, m, module_re)) {
            ++chk.modules_defined;
            defined.insert(m[1]);
        }
        if (std::regex_search(line, m, endmodule_re)) ++ends;
        // Instances: "<name> u_xxx (" or "<name> #(...) u_xxx (".
        if (std::regex_search(line, m, instance_re)) {
            const std::string word = m[1];
            if (word != "module" && word != "input" && word != "output" &&
                word != "wire" && word != "reg" && word != "assign" &&
                word != "parameter" && word != "integer" &&
                word != "always" && word != "for" && word != "if" &&
                word != "end" && word != "begin") {
                instantiated.push_back(word);
                ++chk.instances;
            }
        }
    }
    if (chk.modules_defined != ends) {
        chk.ok = false;
        chk.problems.push_back("module/endmodule imbalance: " +
                               std::to_string(chk.modules_defined) + " vs " +
                               std::to_string(ends));
    }
    for (const auto& inst : instantiated) {
        if (defined.count(inst) == 0) {
            chk.ok = false;
            chk.problems.push_back("instance of undefined module: " + inst);
        }
    }
    // Every declared top-level net must appear at least twice (declaration
    // plus at least one connection).
    const std::regex wire_decl_re{R"(wire(?:\s*\[[^\]]*\])?\s+([\w, ]+);)"};
    auto begin =
        std::sregex_iterator(text.begin(), text.end(), wire_decl_re);
    for (auto it = begin; it != std::sregex_iterator{}; ++it) {
        std::string names = (*it)[1];
        std::istringstream ns{names};
        std::string name;
        while (std::getline(ns, name, ',')) {
            // Trim.
            const auto a = name.find_first_not_of(" \t");
            const auto b = name.find_last_not_of(" \t");
            if (a == std::string::npos) continue;
            name = name.substr(a, b - a + 1);
            std::size_t uses = 0;
            for (std::size_t pos = text.find(name); pos != std::string::npos;
                 pos = text.find(name, pos + 1))
                ++uses;
            if (uses < 2) {
                chk.ok = false;
                chk.problems.push_back("dangling net: " + name);
            }
        }
    }
    return chk;
}

} // namespace noc
