#include "sim/kernel.h"

namespace noc {

void Sim_kernel::add(Component* c)
{
    if (c == nullptr)
        throw std::invalid_argument{"Sim_kernel::add: null component"};
    c->sched_ = this;
    c->sched_id_ = static_cast<std::uint32_t>(components_.size());
    components_.push_back(c);
    awake_.push_back(1);
    ++awake_count_;
    if (c->uses_advance()) advancers_.push_back(c);
}

void Sim_kernel::set_mode(Kernel_mode m)
{
    mode_ = m;
    // Re-arm everything on a mode switch: the reference schedule does not
    // maintain wake state, so stale sleep flags must not leak into a
    // subsequent gated run.
    for (auto& a : awake_) a = 1;
    awake_count_ = awake_.size();
}

void Sim_kernel::wake_at(Component* c, Cycle at)
{
    if (c == nullptr || c->sched_ != this) return;
    if (mode_ == Kernel_mode::reference) return; // everything steps anyway
    if (at <= now_) {
        wake(c);
        return;
    }
    timers_.emplace(at, c);
}

std::size_t Sim_kernel::channel_count() const
{
    std::size_t n = 0;
    for (const auto& g : groups_) n += g->size();
    return n;
}

std::size_t Sim_kernel::active_component_count() const
{
    return awake_count_;
}

void Sim_kernel::run(Cycle cycles)
{
    if (mode_ == Kernel_mode::reference)
        run_reference(cycles);
    else
        run_gated(cycles);
}

void Sim_kernel::run_reference(Cycle cycles)
{
    // The naive pre-gating schedule: every component steps and advances
    // through its virtual interface every cycle; channels in groups advance
    // one virtual call at a time with no empty fast path.
    for (Cycle i = 0; i < cycles; ++i) {
        for (auto* c : components_) c->step(now_);
        for (const auto& g : groups_) g->step_all_naive(now_);
        for (const auto& g : groups_) g->advance_all_naive();
        for (auto* c : components_) c->advance();
        ++now_;
    }
}

void Sim_kernel::run_gated(Cycle cycles)
{
    const std::size_t n = components_.size();
    stepped_.resize(n);
    const Cycle deadline = now_ + cycles;
    while (now_ < deadline) {
        // Timed self-wakes due this cycle.
        while (!timers_.empty() && timers_.top().first <= now_) {
            wake(timers_.top().second);
            timers_.pop();
        }

        // Idle-region skip-ahead: with no component armed and no value
        // pending or in flight in any channel, every cycle until the next
        // timer is provably a no-op (nothing steps, every commit is the
        // empty fast path, no wake can fire) — so jump now_ straight to
        // the earliest pending timer, or to the end of the run. Matters
        // for trace replay with long inter-burst gaps.
        if (awake_count_ == 0) {
            bool quiet = true;
            for (const auto& g : groups_)
                if (!g->all_quiet()) {
                    quiet = false;
                    break;
                }
            if (quiet) {
                now_ = (!timers_.empty() && timers_.top().first < deadline)
                           ? timers_.top().first
                           : deadline;
                continue; // due timers pop at the top of the loop
            }
        }

        // Phase 1: step the active set; each stepped component that reports
        // quiescent is descheduled on the spot. The snapshot (stepped_)
        // keeps the later advance pass aligned with who actually stepped.
        // The sleep decision happens before channel commits, so a
        // commit-time wake overrides it and the component runs the cycle
        // its input becomes visible; direct cross-component mutation during
        // another component's step re-arms via request_wake().
        for (std::size_t k = 0; k < n; ++k) {
            stepped_[k] = awake_[k];
            if (awake_[k]) {
                Component* c = components_[k];
                c->step(now_);
                if (c->is_quiescent()) {
                    awake_[k] = 0;
                    --awake_count_;
                }
            }
        }

        // Phase 2: devirtualized channel commit; wakes readers of channels
        // whose output became non-empty.
        for (const auto& g : groups_) g->commit_all(*this);

        // Legacy component-registered channels commit through advance();
        // nothing else declares one, so this loop is normally empty.
        for (auto* c : advancers_)
            if (stepped_[c->sched_id_]) c->advance();

        ++now_;
    }
}

} // namespace noc
