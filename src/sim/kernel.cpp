#include "sim/kernel.h"

#include "common/noc_assert.h"

namespace noc {

thread_local std::uint32_t Sim_kernel::t_current_shard_ = 0;

Sim_kernel::Sim_kernel() : shards_(1)
{
    wake_mail_[0].resize(1);
    wake_mail_[1].resize(1);
}

Sim_kernel::~Sim_kernel()
{
    if (!workers_.empty()) {
        {
            const std::lock_guard<std::mutex> lock{job_mutex_};
            shutdown_ = true;
        }
        job_cv_.notify_all();
        for (auto& w : workers_) w.join();
    }
}

void Sim_kernel::set_shard_count(std::uint32_t n)
{
    if (n == 0)
        throw std::invalid_argument{"Sim_kernel: shard count must be >= 1"};
    if (!components_.empty() || channel_count() != 0)
        throw std::logic_error{
            "Sim_kernel: set_shard_count before registering components"};
    if (!workers_.empty())
        throw std::logic_error{
            "Sim_kernel: cannot reshard after workers spawned"};
    shards_ = std::vector<Shard_state>(n);
    wake_mail_[0].assign(static_cast<std::size_t>(n) * n, {});
    wake_mail_[1].assign(static_cast<std::size_t>(n) * n, {});
}

void Sim_kernel::add(Component* c, std::uint32_t shard)
{
    if (c == nullptr)
        throw std::invalid_argument{"Sim_kernel::add: null component"};
    if (shard >= shard_count())
        throw std::invalid_argument{"Sim_kernel::add: shard out of range"};
    c->sched_ = this;
    c->sched_id_ = static_cast<std::uint32_t>(components_.size());
    c->shard_ = shard;
    components_.push_back(c);
    awake_.push_back(1);
    Shard_state& sh = shards_[shard];
    sh.members.push_back(c->sched_id_);
    ++sh.awake_count;
    if (c->uses_advance()) sh.advancers.push_back(c);
}

void Sim_kernel::set_mode(Kernel_mode m)
{
    if (m == Kernel_mode::sharded && parallel_active_)
        throw std::logic_error{"Sim_kernel: mode switch during a run"};
    mode_ = m;
    // Re-arm everything on a mode switch: the reference schedule does not
    // maintain wake state, so stale sleep flags must not leak into a
    // subsequent gated or sharded run.
    for (auto& a : awake_) a = 1;
    for (auto& sh : shards_) sh.awake_count = sh.members.size();
    // Pending cross-shard wakes are subsumed by the re-arm.
    for (auto& parity : wake_mail_)
        for (auto& box : parity) box.clear();
}

void Sim_kernel::wake_at(Component* c, Cycle at)
{
    if (c == nullptr || c->sched_ != this) return;
    if (mode_ == Kernel_mode::reference) return; // everything steps anyway
    if (at <= now_) {
        wake(c);
        return;
    }
    // Timers live in the component's own shard queue; during a parallel
    // phase only that shard's thread may push (components self-schedule).
    NOC_ASSERT(!parallel_active_ || c->shard_ == t_current_shard_,
               "Sim_kernel: cross-shard wake_at during a parallel phase");
    shards_[c->shard_].timers.emplace(at, c);
}

std::size_t Sim_kernel::channel_count() const
{
    std::size_t n = 0;
    for (const auto& sh : shards_)
        for (const auto& g : sh.groups) n += g->size();
    return n;
}

std::size_t Sim_kernel::active_component_count() const
{
    std::size_t n = total_awake();
    // Wakes still in flight in a mailbox arm their target on the next
    // cycle; count them so "active" matches what the next cycle will step.
    for (const auto& parity : wake_mail_)
        for (const auto& box : parity) n += box.size();
    return n;
}

std::uint32_t Sim_kernel::component_shard(const Component* c) const
{
    if (c == nullptr || c->sched_ != this)
        throw std::invalid_argument{
            "Sim_kernel: component not registered here"};
    return c->shard_;
}

std::size_t Sim_kernel::component_count_in_shard(std::uint32_t s) const
{
    return shards_.at(s).members.size();
}

std::size_t Sim_kernel::channel_count_in_shard(std::uint32_t s) const
{
    std::size_t n = 0;
    for (const auto& g : shards_.at(s).groups) n += g->size();
    return n;
}

void Sim_kernel::cross_shard_wake(Component* c)
{
    wake_mail_[mail_parity_][static_cast<std::size_t>(t_current_shard_) *
                                 shard_count() +
                             c->shard_]
        .push_back(c->sched_id_);
    cross_wakes_.fetch_add(1, std::memory_order_relaxed);
}

void Sim_kernel::run(Cycle cycles)
{
    switch (mode_) {
    case Kernel_mode::reference: run_reference(cycles); break;
    case Kernel_mode::activity_gated: run_gated(cycles); break;
    case Kernel_mode::sharded: run_sharded(cycles); break;
    }
}

void Sim_kernel::run_reference(Cycle cycles)
{
    // The naive pre-gating schedule: every component steps and advances
    // through its virtual interface every cycle; channels in groups advance
    // one virtual call at a time with no empty fast path.
    for (Cycle i = 0; i < cycles; ++i) {
        for (auto* c : components_) c->step(now_);
        for (const auto& sh : shards_)
            for (const auto& g : sh.groups) g->step_all_naive(now_);
        for (const auto& sh : shards_)
            for (const auto& g : sh.groups) g->advance_all_naive();
        for (auto* c : components_) c->advance();
        ++now_;
    }
}

void Sim_kernel::drain_due_timers(Shard_state& sh, Cycle now)
{
    while (!sh.timers.empty() && sh.timers.top().first <= now) {
        wake(sh.timers.top().second);
        sh.timers.pop();
    }
}

bool Sim_kernel::all_groups_quiet() const
{
    for (const auto& sh : shards_)
        for (const auto& g : sh.groups)
            if (!g->all_quiet()) return false;
    return true;
}

Cycle Sim_kernel::earliest_timer() const
{
    Cycle t = invalid_cycle;
    for (const auto& sh : shards_)
        if (!sh.timers.empty() && sh.timers.top().first < t)
            t = sh.timers.top().first;
    return t;
}

void Sim_kernel::record_job_error() noexcept
{
    const std::lock_guard<std::mutex> lock{job_mutex_};
    if (!job_error_) job_error_ = std::current_exception();
    job_failed_.store(true, std::memory_order_release);
}

void Sim_kernel::run_gated(Cycle cycles)
{
    const std::size_t n = components_.size();
    stepped_.resize(n);
    const Cycle deadline = now_ + cycles;
    while (now_ < deadline) {
        // Timed self-wakes due this cycle.
        for (auto& sh : shards_) drain_due_timers(sh, now_);

        // Idle-region skip-ahead: with no component armed and no value
        // pending or in flight in any channel, every cycle until the next
        // timer is provably a no-op (nothing steps, every commit is the
        // empty fast path, no wake can fire) — so jump now_ straight to
        // the earliest pending timer, or to the end of the run. Matters
        // for trace replay with long inter-burst gaps.
        if (total_awake() == 0 && all_groups_quiet()) {
            const Cycle t = earliest_timer();
            const Cycle next =
                (t != invalid_cycle && t < deadline) ? t : deadline;
            if (next > now_) {
                ++skip_ahead_regions_;
                skip_ahead_cycles_ += next - now_;
            }
            now_ = next;
            continue; // due timers pop at the top of the loop
        }

        // Phase 1: step the active set; each stepped component that reports
        // quiescent is descheduled on the spot. The snapshot (stepped_)
        // keeps the later advance pass aligned with who actually stepped.
        // The sleep decision happens before channel commits, so a
        // commit-time wake overrides it and the component runs the cycle
        // its input becomes visible; direct cross-component mutation during
        // another component's step re-arms via request_wake().
        for (std::size_t k = 0; k < n; ++k) {
            stepped_[k] = awake_[k];
            if (awake_[k]) {
                Component* c = components_[k];
                c->step(now_);
                if (c->is_quiescent()) {
                    awake_[k] = 0;
                    --shards_[c->shard_].awake_count;
                }
            }
        }

        // Phase 2: devirtualized channel commit; wakes readers of channels
        // whose output became non-empty.
        for (const auto& sh : shards_)
            for (const auto& g : sh.groups) g->commit_all(*this);

        // Legacy component-registered channels commit through advance();
        // nothing else declares one, so this loop is normally empty.
        for (const auto& sh : shards_)
            for (auto* c : sh.advancers)
                if (stepped_[c->sched_id_]) c->advance();

        ++now_;
    }
}

void Sim_kernel::ensure_workers()
{
    const std::uint32_t n = shard_count();
    if (workers_.size() + 1 == n || n == 1) {
        if (workers_.empty()) barrier_.reset(n);
        return;
    }
    barrier_.reset(n);
    workers_.reserve(n - 1);
    for (std::uint32_t s = 1; s < n; ++s)
        workers_.emplace_back([this, s] { worker_main(s); });
}

void Sim_kernel::worker_main(std::uint32_t shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock{job_mutex_};
            job_cv_.wait(lock, [&] {
                return shutdown_ || job_epoch_ != seen;
            });
            if (shutdown_) return;
            seen = job_epoch_;
        }
        shard_job(shard);
    }
}

void Sim_kernel::run_sharded(Cycle cycles)
{
    if (cycles == 0) return;
    ensure_workers();
    stepped_.resize(components_.size());
    job_deadline_ = now_ + cycles;
    job_cycle_.store(now_, std::memory_order_relaxed);
    job_failed_.store(false, std::memory_order_relaxed);
    job_error_ = nullptr;
    parallel_active_ = true;
    {
        const std::lock_guard<std::mutex> lock{job_mutex_};
        ++job_epoch_;
    }
    job_cv_.notify_all();
    shard_job(0); // the calling thread is shard 0's worker
    parallel_active_ = false;
    // Workers released from the final barrier only read the job_* atomics
    // before parking, and only sharded completions — which need their
    // participation — write those, so nothing the caller does next races.
    if (job_error_) {
        const std::exception_ptr e = job_error_;
        job_error_ = nullptr;
        std::rethrow_exception(e);
    }
}

void Sim_kernel::shard_job(std::uint32_t shard)
{
    t_current_shard_ = shard;
    if (thread_init_) thread_init_(shard);
    Shard_state& sh = shards_[shard];
    const Cycle deadline = job_deadline_;
    const std::uint32_t n = shard_count();
    Cycle now = job_cycle_.load(std::memory_order_relaxed);
    for (;;) {
        // Phase 1: inbound cross-shard wakes produced last cycle (the
        // other mailbox parity; this cycle's producers append to
        // wake_mail_[mail_parity_]), due timers, then step this shard's
        // active set (see run_gated). A phase that throws poisons the job:
        // the barrier protocol still runs every phase (so no worker is
        // ever left blocked) but the remaining work is skipped and
        // run_sharded rethrows once the job has wound down.
        bool walked = false;
        if (!job_failed_.load(std::memory_order_acquire)) {
            try {
                // Idle-shard fast path: with nothing armed, no inbound
                // wake and no due timer, the member walk is provably a
                // no-op (every stepped_ flag would be cleared and nobody
                // would step), so a lightly-loaded shard costs only this
                // check and the barrier arrival, not a walk over its
                // members. stepped_ is left stale; phase 2 compensates by
                // keying its advancer pass on `walked`.
                auto& inboxes = wake_mail_[mail_parity_ ^ 1u];
                // Cheapest checks first: a busy shard (the common case)
                // must not pay the O(shards) mailbox scan just to learn
                // what awake_count already told it.
                const bool busy = [&] {
                    if (sh.awake_count != 0) return true;
                    if (!sh.timers.empty() && sh.timers.top().first <= now)
                        return true;
                    for (std::uint32_t from = 0; from < n; ++from)
                        if (!inboxes[static_cast<std::size_t>(from) * n +
                                     shard]
                                 .empty())
                            return true;
                    return false;
                }();
                if (busy) {
                    walked = true;
                    for (std::uint32_t from = 0; from < n; ++from) {
                        auto& box =
                            inboxes[static_cast<std::size_t>(from) * n +
                                    shard];
                        for (const std::uint32_t id : box)
                            if (!awake_[id]) {
                                awake_[id] = 1;
                                ++sh.awake_count;
                            }
                        box.clear();
                    }
                    drain_due_timers(sh, now);
                    for (const std::uint32_t id : sh.members) {
                        stepped_[id] = awake_[id];
                        if (awake_[id]) {
                            Component* c = components_[id];
                            c->step(now);
                            if (c->is_quiescent()) {
                                awake_[id] = 0;
                                --sh.awake_count;
                            }
                        }
                    }
                } else {
                    ++sh.idle_skips;
                }
            } catch (...) {
                record_job_error();
            }
        }

        barrier_.arrive_and_wait([] {});

        // Phase 2: commit this shard's channels. Wakes for foreign readers
        // go through the mailboxes (see Sim_kernel::wake). On the idle
        // fast path quiet groups are skipped outright (channels can still
        // carry in-flight values while every component sleeps, so busy
        // groups commit regardless), and the advancer pass — guarded by
        // the stale stepped_ flags — is skipped with the walk.
        if (!job_failed_.load(std::memory_order_acquire)) {
            try {
                for (const auto& g : sh.groups)
                    if (walked || !g->all_quiet()) g->commit_all(*this);
                if (walked)
                    for (auto* c : sh.advancers)
                        if (stepped_[c->sched_id_]) c->advance();
            } catch (...) {
                record_job_error();
            }
        }

        barrier_.arrive_and_wait([this, deadline] {
            advance_cycle(deadline);
        });
        // Exit on the monotonic job cycle, NOT a resettable flag: read
        // late (after the caller launched the next job) it can only have
        // grown further past this job's deadline.
        now = job_cycle_.load(std::memory_order_acquire);
        if (now >= deadline) break;
    }
}

void Sim_kernel::advance_cycle(Cycle deadline)
{
    // Runs on exactly one thread while every other worker is blocked at the
    // barrier, so it may touch all shard state.
    Cycle next = now_ + 1;
    if (job_failed_.load(std::memory_order_acquire)) {
        next = deadline; // wind the job down; run_sharded rethrows
    } else if (total_awake() == 0 && all_groups_quiet()) {
        // Idle-region skip-ahead (see run_gated), extended with the mailbox
        // check: a wake in flight arms its target next cycle, so the region
        // is not idle.
        bool quiet = true;
        for (const auto& parity : wake_mail_)
            for (const auto& box : parity)
                if (!box.empty()) {
                    quiet = false;
                    break;
                }
        if (quiet) {
            const Cycle t = earliest_timer();
            next = (t != invalid_cycle && t < deadline) ? t : deadline;
            if (next < now_ + 1) next = now_ + 1; // timers due now popped
            if (next > now_ + 1) {
                // Barrier-exclusive, like now_ itself: the completion runs
                // on one thread and the release/acquire pair publishes it.
                ++skip_ahead_regions_;
                skip_ahead_cycles_ += next - (now_ + 1);
            }
        }
    }
    mail_parity_ ^= 1u;
    now_ = next;
    job_cycle_.store(next, std::memory_order_release);
}

} // namespace noc
