#include "sim/kernel.h"

#include <stdexcept>

namespace noc {

void Sim_kernel::add(Component* c)
{
    if (c == nullptr)
        throw std::invalid_argument{"Sim_kernel::add: null component"};
    components_.push_back(c);
}

void Sim_kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i) {
        for (auto* c : components_) c->step(now_);
        for (auto* c : components_) c->advance();
        ++now_;
    }
}

} // namespace noc
