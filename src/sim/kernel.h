// Cycle-driven, two-phase simulation kernel with activity gating and an
// optional sharded (multi-threaded) schedule.
//
// Components communicate exclusively through pipeline channels (see
// arch/channel.h). Each simulated cycle has two phases:
//
//   1. step(cycle)  — every *active* component reads the outputs of channels
//                     (values written `latency` cycles ago) and writes new
//                     values to channel inputs;
//   2. commit       — every channel shifts its pipeline by one stage.
//
// Because reads see only values committed in earlier cycles, the result is
// independent of component iteration order, which makes runs deterministic
// and lets tests compare simulations component-by-component.
//
// Activity gating (the software analog of router clock gating) rests on two
// mechanisms:
//
//   * Sleep/wake for components. After a component steps, the kernel asks
//     is_quiescent(); a component that reports quiescent is descheduled and
//     skipped on subsequent cycles until something wakes it. Channels
//     registered through add_channel() carry a wake edge to their reader
//     (wired by the system builder): whenever a commit makes a channel's
//     output non-empty, the reader is re-armed for the next cycle — exactly
//     the cycle at which it could first observe the value. Components may
//     also re-arm themselves via request_wake() when mutated from outside
//     the simulation (e.g. a packet enqueued between run() calls), or
//     schedule a timed self-wake via request_wake_at() when their next
//     action is known in advance (an NI whose source has already drawn its
//     next injection cycle). State-only consumers can avoid wakes entirely:
//     a channel with a Value_sink (arch/channel.h) pushes each value into
//     the sink at the commit that makes it visible — flow-control tokens
//     use this, so a returning credit updates the sender's counter without
//     waking the router that owns it.
//
//   * Devirtualized channel commit. Channels registered via add_channel()
//     are held in flat arrays per payload type and advanced with a direct
//     (non-virtual, inlinable) loop — one virtual call per payload *type*
//     per cycle instead of one per channel. The commit itself fast-paths
//     fully-empty pipelines to a single load-and-branch.
//
// The sleep contract a component must honour to override is_quiescent():
//
//   quiescent  ==  "given no further input, every future step() is a no-op
//                   with bit-identical external behaviour to not running"
//
// i.e. all FIFOs empty, no retransmission buffers pending, no RNG that must
// be drawn every cycle, and anything it periodically publishes (e.g. an
// ON/OFF stop mask) is a pure function of that idle state so the last
// published value stays correct while asleep. Under that contract a gated
// run is bit-identical to the ungated one: a sleeping component's steps
// would have been no-ops, and every input that could change its state
// travels through a channel whose commit re-wakes it on the exact cycle the
// value becomes visible.
//
// Gating is sound only when EVERY path by which input can reach a sleeping
// component carries a wake edge. The kernel cannot verify that; the builder
// that wires the edges asserts it by calling set_mode(activity_gated) —
// Noc_system does. A bare kernel therefore defaults to
// Kernel_mode::reference, the naive pre-gating schedule (every component
// stepped and advanced through its virtual interface every cycle), which is
// also what equivalence tests and benches diff the gated kernel against on
// identical configurations.
//
// ---------------------------------------------------------------------------
// Threading model (Kernel_mode::sharded)
//
// The sharded schedule runs the gated schedule's two phases on a persistent
// pool of worker threads, one shard per thread (the calling thread doubles
// as shard 0's worker). The system builder partitions components and
// channels into spatially contiguous shards via the `shard` arguments of
// add() / add_channel(). Callers do not pick shard ids by hand: they hand
// Noc_builder (arch/noc_builder.h) — or the Build_options ctor it drives —
// a Partition_plan (arch/partition_plan.h), which resolves to contiguous
// switch-id blocks with either equal-count cuts (contiguous(n)) or
// weight-balanced cuts from a profiling run's flits_routed counts
// (balanced(n, weights)); Noc_system then registers every component and
// channel per the rules below. WHERE the cuts land is scheduling metadata:
// results are bit-identical for any plan, only the barrier wait changes
// (a weight-balanced plan keeps one hot shard from bounding every cycle).
// Each shard owns
//
//   * a slice of the awake bitmap plus its own awake count,
//   * its own timer queue,
//   * its own per-payload-type channel groups,
//
// and a cycle is two parallel phases separated by a barrier:
//
//   phase 1 (step)    each shard drains its inbound wake mailboxes and due
//                     timers, then steps its own active components. An idle
//                     shard — empty active set, empty inboxes, no due timer
//                     — skips the member walk entirely and proceeds
//                     straight to the barrier (its phase 2 then commits
//                     only non-quiet channel groups), so a quiet region of
//                     a large mesh costs two barrier arrivals per cycle,
//                     not a walk;
//   -- barrier --
//   phase 2 (commit)  each shard commits its own channel groups;
//   -- barrier --     (one thread advances the cycle / runs skip-ahead)
//
// The two-phase read-committed discipline is what makes this bit-identical
// to the sequential schedules: a step may only observe values committed in
// earlier cycles, so the interleaving of steps across shards — like the
// iteration order within one shard — cannot change results.
//
// Single-writer-per-channel invariant: every channel has exactly ONE
// component that calls write() on it, and the builder must register the
// channel in that writer's shard. Phase 1 then touches channel input state
// (pending value, the group's armed list) only from the writer's thread,
// and phase 2 commits it only from the same thread — no locks, no atomics
// on the hot path. Channel OUTPUT state crosses shards only through the
// barrier: a commit in shard A at cycle t publishes a value that shard B's
// reader first observes during step at t+1, after the barrier between them.
// The same applies to Value_sinks: each sink is registered on exactly one
// channel, so phase 2 touches each sink from exactly one thread (the
// writer-shard's), and the sink's owner reads the folded state only in a
// later phase 1. Consequently a sink must mutate only state that is
// otherwise untouched during phase 2 (Link_sender's token counters and the
// router arrival slots satisfy this).
//
// What components may touch in each phase:
//   phase 1: their own state, channel *outputs* (read), channel *inputs*
//            they own (write), and the kernel's wake API for THEMSELVES
//            (request_wake / request_wake_at). They must not mutate
//            components outside their shard — all cross-shard influence
//            must flow through channels. (Noc_system obeys this: delivery
//            listeners and reply generation are NI-local, and observability
//            probes (arch/probe.h) partition their state by shard — a
//            router's on_hop() call writes only its own shard's slice.)
//   phase 2: only channel commit machinery runs; sinks fold values into
//            single-consumer state and may wake any component — wake() is
//            the one cross-shard-safe kernel entry point during a parallel
//            phase.
//
// Cross-shard wakes (a committed link-data value whose reader router lives
// in another shard; a token that unblocks a sender owned by another shard)
// go through per-(writer-shard x reader-shard) single-producer
// single-consumer mailboxes: the committing thread appends the target's id
// to its own outbox row, and the target shard drains its inbox column at
// the start of the next phase 1 — the exact cycle a local wake would have
// armed the component for. Mailboxes are double-buffered by cycle parity so
// a drain never runs concurrently with an append; the barrier between
// phases provides the happens-before edge, so no atomics are needed on the
// mailbox vectors themselves.
//
// Reconfiguration points and route epochs: the boundary between two run()
// calls is a sequential point — every worker is parked at the job barrier,
// all channel commits from the last cycle have been published, and the
// caller thread has exclusive access to the entire component graph.
// Structural mutation (rewriting route LUTs, failing links, corrupting or
// purging in-flight flits, pausing injection — everything the fault engine
// in arch/fault_plan.h does) is legal ONLY at these points, and only from
// the thread that calls run(). The rules:
//   - Never mutate shared simulation state from inside a phase; a
//     component that wants to reconfigure must surface the request to the
//     run() caller (e.g. by returning from run() at a scheduled cycle)
//     and let it happen between calls.
//   - Mutations at a sequential point need no synchronization and are
//     TSan-clean by construction: the next run() call's job hand-off
//     publishes them to every worker.
//   - A mutation that changes which components CAN make progress (killing
//     a link, rewriting routes) must wake the affected components, or an
//     activity-gated/sharded schedule may leave them parked on state that
//     no longer arrives; waking everything is always safe and costs one
//     dense cycle.
//   - Determinism: anything mutated at a sequential point is ordinary
//     per-cycle state, so a fixed mutation schedule keyed on cycle numbers
//     (Fault_plan) stays bit-identical across reference, activity-gated
//     and sharded runs at any shard count.
//
// Route swaps ride on this machinery as EPOCHS. A route table is never
// edited in place: Noc_system publishes a complete replacement Route_set
// at a sequential point, stamps every packet with the epoch it was
// injected under (Flit::route_epoch), and lets old-epoch packets finish on
// the route set they were born with — each Route_set stays immutable for
// as long as any packet references it. Two completion paths:
//   - Live switchover (Recovery_mode::epoch): the replacement publishes at
//     failure + reroute_latency exactly, while old-epoch packets are still
//     in flight. Safe only when the channel-dependency graph of the UNION
//     of every in-flight route function is acyclic
//     (topology/deadlock.h:analyze_union_deadlock) — checked at the
//     sequential point, before anything mutates.
//   - Drain fallback: when the union check finds a cycle, the swap waits
//     at successive sequential points until the flit pool is empty (the
//     drain path), then publishes to a network with exactly one live
//     epoch.
// Both paths mutate only at sequential points and key every decision off
// kernel state that is identical across schedules (cycle number, flit-pool
// liveness at the boundary), so epoch history — like every other fault
// observable — is bit-identical at any shard count.
//
// Error handling: the simulator's exceptions signal wiring/invariant
// violations, and every schedule propagates them to run()'s caller. Under
// the sharded schedule the first exception a phase throws is captured,
// the remaining phases become no-ops while the job winds down through the
// normal barrier protocol (so no worker is left blocked), and run()
// rethrows on the calling thread. The simulation state mid-cycle is NOT
// rolled back — as in the sequential schedules, a throwing run leaves the
// system unusable for further simulation.
#pragma once

#include "common/types.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace noc {

class Sim_kernel;
template<typename T> class Pipeline_channel;

/// Anything clocked: routers, network interfaces, links, traffic sources.
class Component {
public:
    virtual ~Component() = default;

    /// Phase 1: compute this cycle's behaviour. May read channel outputs and
    /// write channel inputs; must not observe values written this cycle.
    virtual void step(Cycle now) = 0;

    /// Phase 2: commit pipeline state. Default: nothing to commit.
    /// A component that overrides this must also override uses_advance() to
    /// return true — the gated scheduler only visits declared advancers in
    /// phase 2 (the reference schedule calls advance() on everything).
    virtual void advance() {}

    /// Declares that advance() does real work (see above).
    [[nodiscard]] virtual bool uses_advance() const { return false; }

    /// May the kernel skip this component until one of its inputs commits a
    /// value? Must follow the sleep contract in the header comment; the
    /// default (never quiescent) is always safe.
    [[nodiscard]] virtual bool is_quiescent() const { return false; }

    /// Diagnostic name used in error messages and traces.
    [[nodiscard]] virtual std::string name() const { return "component"; }

    /// Re-arm this component in its kernel's active set. Call when state
    /// changes outside step() (e.g. work enqueued between run() calls).
    /// Public so collaborators that are not Components — a Link_sender
    /// folding a token that unblocks its sleeping owner — can re-arm it;
    /// waking is always safe (a spurious wake costs one no-op step).
    /// No-op when the component is not registered with a kernel.
    void request_wake();

protected:
    /// Schedule a future self-wake: the component will be re-armed at the
    /// start of cycle `at`. Used by components whose next action is known in
    /// advance (e.g. an NI whose source has drawn its next injection cycle)
    /// so they can sleep through the gap. Timers only affect scheduling,
    /// never simulation state, and are ignored in reference mode (where
    /// everything steps anyway). May only be called by the component itself
    /// (its timer lives in its own shard's queue).
    void request_wake_at(Cycle at);

private:
    friend class Sim_kernel;
    Sim_kernel* sched_ = nullptr;
    std::uint32_t sched_id_ = 0;
    std::uint32_t shard_ = 0;
};

/// One flat, devirtualized array of channels of a single payload type. The
/// kernel talks to groups through this interface — one virtual dispatch per
/// payload type per cycle; the per-channel loop inside is direct calls.
class Channel_group_base {
public:
    virtual ~Channel_group_base() = default;

    /// Gated commit: fast-path empty channels, wake readers of channels
    /// whose output stage became non-empty.
    virtual void commit_all(Sim_kernel& kernel) = 0;

    /// Reference commit: the naive pre-gating path — one virtual advance()
    /// per channel, no empty skip, no wakes.
    virtual void advance_all_naive() = 0;

    /// Reference phase 1: the seed kernel stepped channels too (a virtual
    /// no-op each); reproduced so the reference baseline is cost-faithful.
    virtual void step_all_naive(Cycle now) = 0;

    /// True when no channel in the group has a value pending or in flight
    /// (enables the kernel's idle-region skip-ahead).
    [[nodiscard]] virtual bool all_quiet() const = 0;

    [[nodiscard]] virtual std::size_t size() const = 0;
};

/// Kernel schedule selector (see header comment).
enum class Kernel_mode : std::uint8_t {
    activity_gated, ///< sleep/wake scheduling + devirtualized channel commit
    reference,      ///< naive: every component, every cycle, fully virtual
    sharded,        ///< gated schedule run shard-parallel on worker threads
};

/// Owns the component schedule and the global cycle counter. Components are
/// registered by non-owning pointer; the builder that wires the system keeps
/// ownership (see arch/noc_system.h).
class Sim_kernel {
public:
    Sim_kernel();
    ~Sim_kernel();
    Sim_kernel(const Sim_kernel&) = delete;
    Sim_kernel& operator=(const Sim_kernel&) = delete;

    /// Number of shards the sharded schedule will use. Must be called
    /// before any add()/add_channel() (shard membership is recorded at
    /// registration time). A kernel always has at least one shard.
    void set_shard_count(std::uint32_t n);
    [[nodiscard]] std::uint32_t shard_count() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /// Register a component into shard `shard` (default 0).
    void add(Component* c, std::uint32_t shard = 0);

    /// Register a channel for devirtualized commit into shard `shard`,
    /// which MUST be the shard of the channel's single writer (see the
    /// threading-model comment). The channel must NOT also be add()ed; its
    /// reader wake edge is wired via Pipeline_channel::set_reader.
    /// Definition in arch/channel.h.
    template<typename T>
    void add_channel(Pipeline_channel<T>* ch, std::uint32_t shard = 0);

    void set_mode(Kernel_mode m);
    [[nodiscard]] Kernel_mode mode() const { return mode_; }

    /// Hook invoked on each shard's worker thread at the start of every
    /// sharded run, with the shard index — used by the builder to point
    /// thread-local allocation at the shard's resources (the flit pool's
    /// per-shard free-list segment). Must be set before the first run.
    void set_shard_thread_init(std::function<void(std::uint32_t)> hook)
    {
        thread_init_ = std::move(hook);
    }

    /// Re-arm `c` for the next cycle. Ignores components registered with a
    /// different (or no) kernel. Safe to call from any phase, any thread of
    /// a sharded run: a wake targeting a foreign shard is routed through
    /// that shard's mailbox and takes effect at the next cycle — the same
    /// cycle a local wake would.
    void wake(Component* c)
    {
        if (c == nullptr || c->sched_ != this) return;
        if (parallel_active_ && c->shard_ != t_current_shard_) {
            cross_shard_wake(c);
            return;
        }
        if (!awake_[c->sched_id_]) {
            awake_[c->sched_id_] = 1;
            ++shards_[c->shard_].awake_count;
        }
    }

    /// Re-arm `c` at the start of cycle `at` (immediately if `at` has
    /// passed). No-op in reference mode. During a parallel phase this may
    /// only be called for components of the executing shard (i.e. by the
    /// component itself).
    void wake_at(Component* c, Cycle at);

    /// Run `cycles` additional cycles.
    void run(Cycle cycles);

    /// Run until `pred()` returns true, checking every `check_interval`
    /// cycles; gives up after `max_cycles`. Returns true if pred held.
    template<typename Pred>
    bool run_until(Pred&& pred, Cycle max_cycles, Cycle check_interval = 64)
    {
        const Cycle deadline = now_ + max_cycles;
        while (now_ < deadline) {
            const Cycle chunk =
                check_interval < deadline - now_ ? check_interval
                                                 : deadline - now_;
            run(chunk);
            if (pred()) return true;
        }
        return pred();
    }

    [[nodiscard]] Cycle now() const { return now_; }
    [[nodiscard]] std::size_t component_count() const
    {
        return components_.size();
    }
    [[nodiscard]] std::size_t channel_count() const;
    /// Components currently armed to step next cycle (observability: the
    /// activity gating win is component_count() minus this). Cross-shard
    /// wakes still sitting in a mailbox are counted too; since mailbox
    /// appends are not deduplicated against the target's bitmap (reading a
    /// foreign shard's awake byte mid-phase would race), a component with a
    /// wake in flight can be counted more than once — treat the value as
    /// an upper bound that is exact when the mailboxes are empty.
    [[nodiscard]] std::size_t active_component_count() const;

    // --- shard introspection (partitioner tests, observability) -----------
    /// Shard the component was registered into.
    [[nodiscard]] std::uint32_t component_shard(const Component* c) const;
    /// Number of components registered into shard `s`.
    [[nodiscard]] std::size_t component_count_in_shard(std::uint32_t s) const;
    /// Number of channels registered into shard `s`.
    [[nodiscard]] std::size_t channel_count_in_shard(std::uint32_t s) const;
    /// Total cross-shard wakes routed through mailboxes so far. Counts
    /// mailbox appends, not arm transitions: a target woken twice in one
    /// cycle counts twice here even though it arms once (the drain
    /// deduplicates against the bitmap).
    [[nodiscard]] std::uint64_t cross_shard_wake_count() const
    {
        return cross_wakes_.load(std::memory_order_relaxed);
    }
    /// Cycles on which a shard took the idle fast path — empty active set,
    /// empty inbound mailboxes, no due timer — and skipped its step-phase
    /// member walk entirely (ROADMAP "adaptive shard schedules" item (b)).
    /// Observability only; summed across shards and cycles. Counted in a
    /// per-shard slot (no shared cache line on the fast path itself), so
    /// read it only between runs, like the other shard introspection.
    [[nodiscard]] std::uint64_t idle_shard_skip_count() const
    {
        std::uint64_t n = 0;
        for (const auto& sh : shards_) n += sh.idle_skips;
        return n;
    }
    /// Idle-region skip-aheads taken (run_gated and the sharded
    /// advance_cycle): whole-kernel quiet regions where now_ jumped
    /// straight to the next timer or deadline. Scheduling observability
    /// like idle_shard_skip_count — read between runs; values differ
    /// across schedules (and across run() chunkings) for the same
    /// bit-identical simulation.
    [[nodiscard]] std::uint64_t skip_ahead_region_count() const
    {
        return skip_ahead_regions_;
    }
    /// Cycles those skip-aheads never executed.
    [[nodiscard]] std::uint64_t skip_ahead_cycle_count() const
    {
        return skip_ahead_cycles_;
    }

private:
    /// Minimal sense-reversing spin barrier. The last arriver runs
    /// `completion` while every other participant is still blocked, giving
    /// it exclusive access to all shard state; the release store / acquire
    /// loads publish everything written before the barrier to every thread
    /// past it. Spins briefly then yields — cycle times are far shorter
    /// than a futex sleep/wake round trip.
    class Spin_barrier {
    public:
        void reset(std::uint32_t participants) { count_ = participants; }

        template<typename Completion>
        void arrive_and_wait(Completion&& completion)
        {
            const std::uint32_t phase =
                phase_.load(std::memory_order_acquire);
            if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                count_) {
                completion();
                arrived_.store(0, std::memory_order_relaxed);
                phase_.store(phase + 1, std::memory_order_release);
            } else {
                int spins = 0;
                while (phase_.load(std::memory_order_acquire) == phase)
                    if (++spins > 2048) std::this_thread::yield();
            }
        }

    private:
        std::atomic<std::uint32_t> arrived_{0};
        std::atomic<std::uint32_t> phase_{0};
        std::uint32_t count_ = 1;
    };

    /// Everything one shard's worker touches on its own: members, active
    /// set accounting, timers, channel groups. Cache-line aligned so two
    /// workers' hot counters never share a line.
    struct alignas(64) Shard_state {
        std::vector<std::uint32_t> members; ///< component ids, step order
        std::size_t awake_count = 0;
        std::uint64_t idle_skips = 0; ///< fast-path cycles (own thread only)
        std::vector<Component*> advancers;
        std::vector<std::unique_ptr<Channel_group_base>> groups;
        std::unordered_map<std::type_index, Channel_group_base*> group_index;
        /// Timed self-wakes, earliest first. Scheduling metadata only —
        /// never simulation state — so drops and duplicates are harmless.
        std::priority_queue<std::pair<Cycle, Component*>,
                            std::vector<std::pair<Cycle, Component*>>,
                            std::greater<>>
            timers;
    };

    void run_gated(Cycle cycles);
    void run_reference(Cycle cycles);
    void run_sharded(Cycle cycles);
    /// The per-shard cycle loop of a sharded run; shard 0 executes on the
    /// calling thread, the rest on persistent workers.
    void shard_job(std::uint32_t shard);
    /// Barrier-exclusive end-of-cycle step: advance now_ (with idle
    /// skip-ahead), flip the mailbox parity, publish the job-done flag.
    void advance_cycle(Cycle deadline);
    void cross_shard_wake(Component* c);
    void ensure_workers();
    void worker_main(std::uint32_t shard);
    void drain_due_timers(Shard_state& sh, Cycle now);
    /// Record the first exception a sharded phase threw; the job then winds
    /// down through the normal barrier protocol and run_sharded rethrows.
    void record_job_error() noexcept;
    /// No value pending or in flight in any channel of any shard.
    [[nodiscard]] bool all_groups_quiet() const;
    /// Earliest pending timer across shards, or invalid_cycle.
    [[nodiscard]] Cycle earliest_timer() const;

    /// Find-or-create the group holding channels of one payload type in
    /// one shard. Hash lookup — the old linear scan was quadratic in the
    /// number of payload types registered.
    template<typename Group> Group& ensure_group(std::uint32_t shard)
    {
        Shard_state& sh = shards_[shard];
        const std::type_index key{typeid(Group)};
        if (const auto it = sh.group_index.find(key);
            it != sh.group_index.end())
            return static_cast<Group&>(*it->second);
        auto owned = std::make_unique<Group>();
        Group& ref = *owned;
        sh.groups.push_back(std::move(owned));
        sh.group_index.emplace(key, &ref);
        return ref;
    }

    [[nodiscard]] std::size_t total_awake() const
    {
        std::size_t n = 0;
        for (const auto& sh : shards_) n += sh.awake_count;
        return n;
    }

    std::vector<Component*> components_;
    std::vector<std::uint8_t> awake_;   // parallel to components_
    std::vector<std::uint8_t> stepped_; // scratch: stepped this cycle
    std::vector<Shard_state> shards_;   // always >= 1
    /// Cross-shard wake mailboxes: wake_mail_[parity][from * n + to] holds
    /// component ids. Double-buffered by cycle parity (see header comment).
    std::vector<std::vector<std::uint32_t>> wake_mail_[2];
    std::uint32_t mail_parity_ = 0; ///< buffer producers append to
    Cycle now_ = 0;
    /// Skip-ahead observability (see the accessors). Written only where
    /// now_ is — the gated loop, or the barrier-exclusive advance_cycle —
    /// so they need no atomics, exactly like now_.
    std::uint64_t skip_ahead_regions_ = 0;
    std::uint64_t skip_ahead_cycles_ = 0;
    Kernel_mode mode_ = Kernel_mode::reference;
    bool parallel_active_ = false;
    std::function<void(std::uint32_t)> thread_init_;
    std::atomic<std::uint64_t> cross_wakes_{0};

    // --- persistent worker pool (sharded mode) -----------------------------
    std::vector<std::thread> workers_; ///< shards 1..n-1; lazily spawned
    Spin_barrier barrier_;
    std::mutex job_mutex_;
    std::condition_variable job_cv_;
    std::uint64_t job_epoch_ = 0; ///< guarded by job_mutex_
    Cycle job_deadline_ = 0;      ///< published before each job
    bool shutdown_ = false;       ///< guarded by job_mutex_
    /// The job's current cycle, published by advance_cycle (the barrier
    /// completion). An atomic so a worker's post-barrier read can never
    /// race with anything the caller does after run_sharded returns; and
    /// MONOTONICALLY NON-DECREASING across jobs, so a worker that reads it
    /// late — after the caller already launched the next job — still
    /// observes a value at or past its own job's deadline and exits. (A
    /// resettable done-flag here once produced zombie workers: a late
    /// reader missed the exit, kept participating in the next job's
    /// barriers uninvited, and wedged the participant count.)
    std::atomic<Cycle> job_cycle_{0};
    /// First exception thrown inside a sharded phase (guarded by
    /// job_mutex_); phases become no-ops once set and run_sharded rethrows
    /// it on the calling thread after the job winds down.
    std::exception_ptr job_error_;
    std::atomic<bool> job_failed_{false};

    /// Shard the current thread is executing (meaningful only while
    /// parallel_active_); 0 on every thread otherwise, so sequential wakes
    /// take the direct path.
    static thread_local std::uint32_t t_current_shard_;
};

inline void Component::request_wake()
{
    if (sched_ != nullptr) sched_->wake(this);
}

inline void Component::request_wake_at(Cycle at)
{
    if (sched_ != nullptr) sched_->wake_at(this, at);
}

} // namespace noc
