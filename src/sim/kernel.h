// Cycle-driven, two-phase simulation kernel.
//
// Components communicate exclusively through pipeline channels (see
// arch/channel.h). Each simulated cycle has two phases:
//
//   1. step(cycle)  — every component reads the *outputs* of channels
//                     (values written `latency` cycles ago) and writes new
//                     values to channel *inputs*;
//   2. advance()    — every channel shifts its pipeline by one stage.
//
// Because reads see only values committed in earlier cycles, the result is
// independent of component iteration order, which makes runs deterministic
// and lets tests compare simulations component-by-component.
#pragma once

#include "common/types.h"

#include <string>
#include <vector>

namespace noc {

/// Anything clocked: routers, network interfaces, links, traffic sources.
class Component {
public:
    virtual ~Component() = default;

    /// Phase 1: compute this cycle's behaviour. May read channel outputs and
    /// write channel inputs; must not observe values written this cycle.
    virtual void step(Cycle now) = 0;

    /// Phase 2: commit pipeline state. Default: nothing to commit.
    virtual void advance() {}

    /// Diagnostic name used in error messages and traces.
    [[nodiscard]] virtual std::string name() const { return "component"; }
};

/// Owns the component schedule and the global cycle counter. Components are
/// registered by non-owning pointer; the builder that wires the system keeps
/// ownership (see arch/noc_system.h).
class Sim_kernel {
public:
    void add(Component* c);

    /// Run `cycles` additional cycles.
    void run(Cycle cycles);

    /// Run until `pred()` returns true, checking every `check_interval`
    /// cycles; gives up after `max_cycles`. Returns true if pred held.
    template<typename Pred>
    bool run_until(Pred&& pred, Cycle max_cycles, Cycle check_interval = 64)
    {
        const Cycle deadline = now_ + max_cycles;
        while (now_ < deadline) {
            const Cycle chunk =
                check_interval < deadline - now_ ? check_interval
                                                 : deadline - now_;
            run(chunk);
            if (pred()) return true;
        }
        return pred();
    }

    [[nodiscard]] Cycle now() const { return now_; }
    [[nodiscard]] std::size_t component_count() const
    {
        return components_.size();
    }

private:
    std::vector<Component*> components_;
    Cycle now_ = 0;
};

} // namespace noc
