// Cycle-driven, two-phase simulation kernel with activity gating.
//
// Components communicate exclusively through pipeline channels (see
// arch/channel.h). Each simulated cycle has two phases:
//
//   1. step(cycle)  — every *active* component reads the outputs of channels
//                     (values written `latency` cycles ago) and writes new
//                     values to channel inputs;
//   2. commit       — every channel shifts its pipeline by one stage.
//
// Because reads see only values committed in earlier cycles, the result is
// independent of component iteration order, which makes runs deterministic
// and lets tests compare simulations component-by-component.
//
// Activity gating (the software analog of router clock gating) rests on two
// mechanisms:
//
//   * Sleep/wake for components. After a component steps, the kernel asks
//     is_quiescent(); a component that reports quiescent is descheduled and
//     skipped on subsequent cycles until something wakes it. Channels
//     registered through add_channel() carry a wake edge to their reader
//     (wired by the system builder): whenever a commit makes a channel's
//     output non-empty, the reader is re-armed for the next cycle — exactly
//     the cycle at which it could first observe the value. Components may
//     also re-arm themselves via request_wake() when mutated from outside
//     the simulation (e.g. a packet enqueued between run() calls), or
//     schedule a timed self-wake via request_wake_at() when their next
//     action is known in advance (an NI whose source has already drawn its
//     next injection cycle). State-only consumers can avoid wakes entirely:
//     a channel with a Value_sink (arch/channel.h) pushes each value into
//     the sink at the commit that makes it visible — flow-control tokens
//     use this, so a returning credit updates the sender's counter without
//     waking the router that owns it.
//
//   * Devirtualized channel commit. Channels registered via add_channel()
//     are held in flat arrays per payload type and advanced with a direct
//     (non-virtual, inlinable) loop — one virtual call per payload *type*
//     per cycle instead of one per channel. The commit itself fast-paths
//     fully-empty pipelines to a single load-and-branch.
//
// The sleep contract a component must honour to override is_quiescent():
//
//   quiescent  ==  "given no further input, every future step() is a no-op
//                   with bit-identical external behaviour to not running"
//
// i.e. all FIFOs empty, no retransmission buffers pending, no RNG that must
// be drawn every cycle (a source that draws its RNG per poll — Burst_source
// today — is never quiescent: skipping a poll would desynchronize the
// stream; Bernoulli_source sidesteps this by drawing geometric gaps and
// naming its next injection cycle via next_poll_at), and anything it
// periodically
// publishes (e.g. an ON/OFF stop mask) is a pure function of that idle state
// so the last published value stays correct while asleep. Under that
// contract a gated run is bit-identical to the ungated one: a sleeping
// component's steps would have been no-ops, and every input that could
// change its state travels through a channel whose commit re-wakes it on
// the exact cycle the value becomes visible.
//
// Gating is sound only when EVERY path by which input can reach a sleeping
// component carries a wake edge. The kernel cannot verify that; the builder
// that wires the edges asserts it by calling set_mode(activity_gated) —
// Noc_system does. A bare kernel therefore defaults to
// Kernel_mode::reference, the naive pre-gating schedule (every component
// stepped and advanced through its virtual interface every cycle), which is
// also what equivalence tests and benches diff the gated kernel against on
// identical configurations.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

namespace noc {

class Sim_kernel;
template<typename T> class Pipeline_channel;

/// Anything clocked: routers, network interfaces, links, traffic sources.
class Component {
public:
    virtual ~Component() = default;

    /// Phase 1: compute this cycle's behaviour. May read channel outputs and
    /// write channel inputs; must not observe values written this cycle.
    virtual void step(Cycle now) = 0;

    /// Phase 2: commit pipeline state. Default: nothing to commit.
    /// A component that overrides this must also override uses_advance() to
    /// return true — the gated scheduler only visits declared advancers in
    /// phase 2 (the reference schedule calls advance() on everything).
    virtual void advance() {}

    /// Declares that advance() does real work (see above).
    [[nodiscard]] virtual bool uses_advance() const { return false; }

    /// May the kernel skip this component until one of its inputs commits a
    /// value? Must follow the sleep contract in the header comment; the
    /// default (never quiescent) is always safe.
    [[nodiscard]] virtual bool is_quiescent() const { return false; }

    /// Diagnostic name used in error messages and traces.
    [[nodiscard]] virtual std::string name() const { return "component"; }

    /// Re-arm this component in its kernel's active set. Call when state
    /// changes outside step() (e.g. work enqueued between run() calls).
    /// Public so collaborators that are not Components — a Link_sender
    /// folding a token that unblocks its sleeping owner — can re-arm it;
    /// waking is always safe (a spurious wake costs one no-op step).
    /// No-op when the component is not registered with a kernel.
    void request_wake();

protected:
    /// Schedule a future self-wake: the component will be re-armed at the
    /// start of cycle `at`. Used by components whose next action is known in
    /// advance (e.g. an NI whose source has drawn its next injection cycle)
    /// so they can sleep through the gap. Timers only affect scheduling,
    /// never simulation state, and are ignored in reference mode (where
    /// everything steps anyway).
    void request_wake_at(Cycle at);

private:
    friend class Sim_kernel;
    Sim_kernel* sched_ = nullptr;
    std::uint32_t sched_id_ = 0;
};

/// One flat, devirtualized array of channels of a single payload type. The
/// kernel talks to groups through this interface — one virtual dispatch per
/// payload type per cycle; the per-channel loop inside is direct calls.
class Channel_group_base {
public:
    virtual ~Channel_group_base() = default;

    /// Gated commit: fast-path empty channels, wake readers of channels
    /// whose output stage became non-empty.
    virtual void commit_all(Sim_kernel& kernel) = 0;

    /// Reference commit: the naive pre-gating path — one virtual advance()
    /// per channel, no empty skip, no wakes.
    virtual void advance_all_naive() = 0;

    /// Reference phase 1: the seed kernel stepped channels too (a virtual
    /// no-op each); reproduced so the reference baseline is cost-faithful.
    virtual void step_all_naive(Cycle now) = 0;

    /// True when no channel in the group has a value pending or in flight
    /// (enables the kernel's idle-region skip-ahead).
    [[nodiscard]] virtual bool all_quiet() const = 0;

    [[nodiscard]] virtual std::size_t size() const = 0;
};

/// Kernel schedule selector (see header comment).
enum class Kernel_mode : std::uint8_t {
    activity_gated, ///< sleep/wake scheduling + devirtualized channel commit
    reference,      ///< naive: every component, every cycle, fully virtual
};

/// Owns the component schedule and the global cycle counter. Components are
/// registered by non-owning pointer; the builder that wires the system keeps
/// ownership (see arch/noc_system.h).
class Sim_kernel {
public:
    void add(Component* c);

    /// Register a channel for devirtualized commit. The channel must NOT
    /// also be add()ed; its reader wake edge is wired via
    /// Pipeline_channel::set_reader. Definition in arch/channel.h.
    template<typename T> void add_channel(Pipeline_channel<T>* ch);

    void set_mode(Kernel_mode m);
    [[nodiscard]] Kernel_mode mode() const { return mode_; }

    /// Re-arm `c` for the next cycle. Ignores components registered with a
    /// different (or no) kernel.
    void wake(Component* c)
    {
        if (c == nullptr || c->sched_ != this) return;
        if (!awake_[c->sched_id_]) {
            awake_[c->sched_id_] = 1;
            ++awake_count_;
        }
    }

    /// Re-arm `c` at the start of cycle `at` (immediately if `at` has
    /// passed). No-op in reference mode.
    void wake_at(Component* c, Cycle at);

    /// Run `cycles` additional cycles.
    void run(Cycle cycles);

    /// Run until `pred()` returns true, checking every `check_interval`
    /// cycles; gives up after `max_cycles`. Returns true if pred held.
    template<typename Pred>
    bool run_until(Pred&& pred, Cycle max_cycles, Cycle check_interval = 64)
    {
        const Cycle deadline = now_ + max_cycles;
        while (now_ < deadline) {
            const Cycle chunk =
                check_interval < deadline - now_ ? check_interval
                                                 : deadline - now_;
            run(chunk);
            if (pred()) return true;
        }
        return pred();
    }

    [[nodiscard]] Cycle now() const { return now_; }
    [[nodiscard]] std::size_t component_count() const
    {
        return components_.size();
    }
    [[nodiscard]] std::size_t channel_count() const;
    /// Components currently armed to step next cycle (observability: the
    /// activity gating win is component_count() minus this).
    [[nodiscard]] std::size_t active_component_count() const;

private:
    void run_gated(Cycle cycles);
    void run_reference(Cycle cycles);

    /// Find-or-create the group holding channels of one payload type.
    template<typename Group> Group& ensure_group()
    {
        const std::type_index key{typeid(Group)};
        for (const auto& [k, g] : group_index_)
            if (k == key) return static_cast<Group&>(*g);
        auto owned = std::make_unique<Group>();
        Group& ref = *owned;
        groups_.push_back(std::move(owned));
        group_index_.emplace_back(key, &ref);
        return ref;
    }

    std::vector<Component*> components_;
    std::vector<Component*> advancers_; // components with uses_advance()
    std::vector<std::uint8_t> awake_;   // parallel to components_
    std::size_t awake_count_ = 0;       // number of set awake_ flags
    std::vector<std::uint8_t> stepped_; // scratch: stepped this cycle
    std::vector<std::unique_ptr<Channel_group_base>> groups_;
    std::vector<std::pair<std::type_index, Channel_group_base*>> group_index_;
    /// Timed self-wakes, earliest first. Scheduling metadata only — never
    /// simulation state — so drops and duplicates are harmless.
    std::priority_queue<std::pair<Cycle, Component*>,
                        std::vector<std::pair<Cycle, Component*>>,
                        std::greater<>>
        timers_;
    Cycle now_ = 0;
    Kernel_mode mode_ = Kernel_mode::reference;
};

inline void Component::request_wake()
{
    if (sched_ != nullptr) sched_->wake(this);
}

inline void Component::request_wake_at(Cycle at)
{
    if (sched_ != nullptr) sched_->wake_at(this, at);
}

} // namespace noc
